//! # CycleQ — an efficient basis for cyclic equational reasoning
//!
//! A from-scratch Rust implementation of the system described in
//! *Jones, Ong, Ramsay. "CycleQ: An Efficient Basis for Cyclic Equational
//! Reasoning" (PLDI 2022)*: a cyclic proof calculus for equational
//! properties of pure functional programs, a goal-directed proof search
//! with contextual substitution as its cut/matching rule, and incremental
//! global-correctness checking via size-change graphs.
//!
//! This crate is the facade over the workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`cycleq_term`] | terms, types, signatures, matching, unification (§2) |
//! | [`cycleq_rewrite`] | rewrite systems, reduction, orders, narrowing (§2, §4) |
//! | [`cycleq_sizechange`] | size-change graphs and closures (§5.2) |
//! | [`cycleq_proof`] | preproofs, the independent checker, rendering (§3) |
//! | [`cycleq_search`] | the CycleQ proof search (§5.1, §6) |
//! | [`cycleq_lang`] | the Haskell-like frontend (§6) |
//! | [`cycleq_analysis`] | static checks of the Remark 2.1 preconditions |
//! | [`cycleq_ri`] | rewriting induction and the Thm 4.3 translation (§4) |
//! | [`cycleq_batch`] | parallel goal batching and the shared normal-form cache |
//!
//! # Quickstart
//!
//! ```
//! use cycleq::Session;
//!
//! let session = Session::from_source(
//!     "data Nat = Z | S Nat
//!      add :: Nat -> Nat -> Nat
//!      add Z y = y
//!      add (S x) y = S (add x y)
//!      goal comm: add x y === add y x",
//! )
//! .unwrap();
//! let verdict = session.prove("comm").unwrap();
//! assert!(verdict.is_proved());
//! println!("{}", verdict.render_proof().unwrap());
//! ```
//!
//! # The Engine API
//!
//! Long-lived embedders configure an [`Engine`] once and load cheap
//! per-program [`Session`] handles from it. Goals are independent, so a
//! multi-goal program proves as one parallel batch — results come back in
//! declaration order with aggregated statistics, goals share reductions
//! through the session's program-scoped normal-form cache, and progress
//! streams to an optional [`EventSink`] in completion order:
//!
//! ```
//! use cycleq::Engine;
//!
//! let engine = Engine::builder().jobs(2).build();
//! let session = engine
//!     .load(
//!         "data Nat = Z | S Nat
//!          add :: Nat -> Nat -> Nat
//!          add Z y = y
//!          add (S x) y = S (add x y)
//!          goal zeroRight: add x Z === x
//!          goal comm: add x y === add y x",
//!     )
//!     .unwrap();
//! let report = session.prove_all();
//! assert!(report.all_proved());
//! assert_eq!(report.goals[0].goal, "zeroRight");
//! ```
//!
//! Searches accept external [`Budget`]s (wall-clock, nodes, fuel) and a
//! shareable [`CancelToken`], polled at every DFS node and inside committed
//! reduction chains, so an embedding service can abort a search mid-flight:
//!
//! ```
//! use cycleq::{Budget, CancelToken, Session};
//! use std::time::Duration;
//!
//! let session = Session::from_source(
//!     "data Nat = Z | S Nat
//!      add :: Nat -> Nat -> Nat
//!      add Z y = y
//!      add (S x) y = S (add x y)
//!      goal comm: add x y === add y x",
//! )
//! .unwrap();
//! let budget = Budget::unlimited().with_timeout(Duration::from_secs(5));
//! let cancel = CancelToken::new(); // cancel.cancel() aborts from any thread
//! let verdict = session.prove_with_budget("comm", &[], &budget, &cancel).unwrap();
//! assert!(verdict.is_proved());
//! ```

use std::collections::HashMap;
use std::error::Error as StdError;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

mod engine;

pub use engine::{Engine, EngineBuilder, EventSink, GoalStatus, ProveEvent};

/// Re-export of the observability crate: spans, the metrics registry,
/// Chrome-trace collection, and Prometheus rendering. See the README's
/// *Observability* section.
pub use cycleq_trace as trace;
pub use cycleq_trace::{MetricsSnapshot, PhaseStat, Profile};

pub use cycleq_analysis::{
    analyze, analyze_source, analyze_with_fixes, apply_fixes, lang_error_diagnostic, unified_diff,
    Code, Diagnostic, Edit, EditKind, Fix, FixOutcome, Severity,
};
pub use cycleq_batch::{available_parallelism, BatchScheduler};
pub use cycleq_lang::{parse_module, GoalDef, LangError, Module};
pub use cycleq_proof::{
    check, check_global, check_global_incremental, check_global_scc, check_interned,
    check_interned_with, cycle_witnesses, export_certificate, global_edges, program_fingerprint,
    render_dot, render_text, Certificate, CertificateError, CheckError, CheckReport, GlobalCheck,
    NodeId, Preproof, RuleApp,
};
pub use cycleq_rewrite::{CacheStats, CancelToken, Program, SharedNormalFormCache};
pub use cycleq_search::{
    Budget, LemmaPolicy, Outcome, ProofResult, Prover, RetryPolicy, SearchConfig, SearchStats,
};
pub use cycleq_term::{Equation, Signature, Term, Type, VarStore};

use engine::Settings;

mod metrics;

/// Errors surfaced by a [`Session`].
#[derive(Clone, Debug)]
pub enum Error {
    /// The source failed to parse or type check.
    Lang(LangError),
    /// No goal with the given name exists.
    UnknownGoal(String),
    /// A produced proof failed the independent checker — indicates a bug.
    Check(cycleq_proof::CheckError),
    /// The verdict does not carry a proof (e.g. refuted or exhausted).
    NoProof,
    /// A certificate was rejected (bad format, tampering, or a failing
    /// proof).
    Certificate(CertificateError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Lang(e) => write!(f, "{e}"),
            Error::UnknownGoal(g) => write!(f, "unknown goal `{g}`"),
            Error::Check(e) => write!(f, "proof failed re-checking: {e}"),
            Error::NoProof => write!(f, "no proof available for this verdict"),
            Error::Certificate(e) => write!(f, "{e}"),
        }
    }
}

impl StdError for Error {}

impl From<LangError> for Error {
    fn from(e: LangError) -> Error {
        Error::Lang(e)
    }
}

/// The outcome of proving one goal, bundling the proof and statistics with
/// enough context to render them.
#[derive(Clone, Debug)]
pub struct Verdict {
    /// The goal's name.
    pub goal: String,
    /// The raw search result.
    pub result: ProofResult,
    /// The independent re-check's report, when the session rechecks proofs
    /// (the default) and the goal was proved. Carries the recheck's
    /// wall-clock time and reduct/memo counters.
    pub recheck: Option<CheckReport>,
    /// Search attempts this verdict took (1 unless the engine's
    /// [`RetryPolicy`] re-ran a timeout, node-budget, or panicked attempt
    /// with escalated budgets). The stats describe the final attempt only.
    pub attempts: u32,
    /// Signature snapshot for rendering.
    sig: Signature,
}

impl Verdict {
    /// Whether the goal was proved.
    pub fn is_proved(&self) -> bool {
        self.result.outcome.is_proved()
    }

    /// Whether the goal was refuted (a ground counterexample exists).
    pub fn is_refuted(&self) -> bool {
        matches!(self.result.outcome, Outcome::Refuted)
    }

    /// Renders the proof tree, with back edges labelled as in the paper's
    /// figures.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NoProof`] when the verdict carries no proof.
    pub fn render_proof(&self) -> Result<String, Error> {
        match self.result.outcome {
            Outcome::Proved { root } => Ok(cycleq_proof::render_text(
                &self.result.proof,
                &self.sig,
                root,
            )),
            _ => Err(Error::NoProof),
        }
    }

    /// Renders the proof graph as Graphviz DOT.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NoProof`] when the verdict carries no proof.
    pub fn render_dot(&self) -> Result<String, Error> {
        match self.result.outcome {
            Outcome::Proved { .. } => Ok(cycleq_proof::render_dot(&self.result.proof, &self.sig)),
            _ => Err(Error::NoProof),
        }
    }
}

/// A per-program proving handle: one parsed program plus the settings of
/// the [`Engine`] that loaded it.
///
/// Sessions are created by [`Engine::load`]; [`Session::from_source`]
/// remains as a one-liner for the default engine. Clones share the
/// program-scoped normal-form cache, so proving through a clone warms the
/// original and vice versa.
///
/// The `with_*`/`without_*` mutators predate the engine and survive as a
/// thin source-compatible shim; new code should configure an
/// [`EngineBuilder`] instead (see the README's *Engine API* migration
/// table).
#[derive(Clone, Debug)]
pub struct Session {
    /// Program-independent settings inherited from the engine. The
    /// deprecated shim mutators copy-on-write these.
    settings: Arc<Settings>,
    module: Module,
    /// The program source as loaded, embedded into exported certificates so
    /// they are self-contained (and fingerprinted against tampering).
    source: Arc<str>,
    /// The program-scoped shared normal-form cache. Every `prove` call
    /// consults and populates it, so reductions are shared across goals,
    /// hints, deepening rounds and worker threads. `None` only with
    /// [`EngineBuilder::shared_cache`]`(false)` (or the deprecated
    /// [`Session::without_shared_cache`]).
    cache: Option<SharedNormalFormCache>,
    /// Predicted per-goal costs recorded from a previous run
    /// ([`Session::with_cost_hints`]); goals missing here fall back to
    /// goal-size prediction.
    cost_hints: HashMap<String, u64>,
    /// Phase-time profile of the most recent top-level prove call (single
    /// or batch), shared across clones. See [`Session::profile`].
    last_profile: Arc<std::sync::Mutex<Option<Profile>>>,
}

impl Session {
    /// Parses, type checks and loads a program through a default
    /// [`Engine`]. Equivalent to `Engine::new().load(src)`.
    ///
    /// # Errors
    ///
    /// Returns the first frontend error.
    pub fn from_source(src: &str) -> Result<Session, Error> {
        Engine::new().load(src)
    }

    pub(crate) fn assemble(
        settings: Arc<Settings>,
        module: Module,
        source: Arc<str>,
        cache: Option<SharedNormalFormCache>,
    ) -> Session {
        Session {
            settings,
            module,
            source,
            cache,
            cost_hints: HashMap::new(),
            last_profile: Arc::new(std::sync::Mutex::new(None)),
        }
    }

    /// Copy-on-write access for the deprecated shim mutators.
    fn settings_mut(&mut self) -> &mut Settings {
        Arc::make_mut(&mut self.settings)
    }

    /// Replaces the search configuration.
    #[deprecated(note = "configure the engine instead: Engine::builder().config(..).build()")]
    pub fn with_config(mut self, config: SearchConfig) -> Session {
        self.settings_mut().config = config;
        self
    }

    /// Disables post-hoc re-checking of proofs (for benchmarking raw search
    /// time).
    #[deprecated(note = "configure the engine instead: Engine::builder().recheck(false).build()")]
    pub fn without_recheck(mut self) -> Session {
        self.settings_mut().recheck = false;
        self
    }

    /// Sets the worker count for [`Session::prove_all`] and
    /// [`Session::prove_many`]; `0` means one worker per hardware thread.
    #[deprecated(note = "configure the engine instead: Engine::builder().jobs(n).build()")]
    pub fn with_jobs(mut self, jobs: usize) -> Session {
        self.settings_mut().jobs = if jobs == 0 {
            available_parallelism()
        } else {
            jobs
        };
        self
    }

    /// The configured worker count.
    pub fn jobs(&self) -> usize {
        self.settings.jobs
    }

    /// Detaches the shared normal-form cache: every prove call recomputes
    /// all reductions from scratch (for benchmarking the cache itself).
    #[deprecated(
        note = "configure the engine instead: Engine::builder().shared_cache(false).build()"
    )]
    pub fn without_shared_cache(mut self) -> Session {
        self.cache = None;
        self
    }

    /// Records the per-goal times of a previous [`BatchReport`] as
    /// predicted costs for batch scheduling: goals that were slow last run
    /// are seeded first this run. Goals absent from the report keep the
    /// default goal-size prediction.
    pub fn with_cost_hints(mut self, report: &BatchReport) -> Session {
        for g in &report.goals {
            let micros = u64::try_from(g.time.as_micros()).unwrap_or(u64::MAX);
            self.cost_hints.insert(g.goal.clone(), micros.max(1));
        }
        self
    }

    /// The per-phase time breakdown of the most recent top-level prove
    /// call through this session (single goal or batch; clones share it).
    ///
    /// Phase timings come from the `cycleq_trace` span machinery, which is
    /// disabled by default: enable it with
    /// [`trace::set_enabled`](cycleq_trace::set_enabled)`(true)` (the CLI's
    /// `--trace-out`/`--metrics-out` and `suite --profile` do) — otherwise
    /// the returned profile has no phases. Returns `None` before the first
    /// prove call.
    ///
    /// The underlying registry is process-global, so with *other* sessions
    /// proving concurrently their phase time is attributed here too; for
    /// exact attribution, profile one session at a time.
    pub fn profile(&self) -> Option<Profile> {
        cycleq_trace::lock_recover(&self.last_profile).clone()
    }

    /// Captures the registry delta of `f` as this session's last profile.
    fn with_profile<T>(&self, f: impl FnOnce() -> T) -> T {
        let before = cycleq_trace::metrics().snapshot();
        let out = f();
        let profile = cycleq_trace::metrics().snapshot().delta(&before).profile();
        *cycleq_trace::lock_recover(&self.last_profile) = Some(profile);
        out
    }

    /// Hit/miss/size/eviction counters of the shared normal-form cache
    /// (all zero when the cache is disabled).
    pub fn shared_cache_stats(&self) -> CacheStats {
        self.cache
            .as_ref()
            .map(SharedNormalFormCache::stats)
            .unwrap_or_default()
    }

    /// The loaded module.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// The program (signature and rules).
    pub fn program(&self) -> &Program {
        &self.module.program
    }

    /// Warnings from validating the paper's standing assumptions
    /// (pattern completeness, orthogonality; Remark 2.1).
    pub fn validate(&self) -> Vec<String> {
        self.module.validate()
    }

    /// Runs the full static analysis over the loaded module: the
    /// soundness preconditions of Remark 2.1 (pattern coverage,
    /// orthogonality, the size-change termination pre-screen) plus the
    /// dead-code sweep, as structured [`Diagnostic`]s with stable codes
    /// and source lines. The structured counterpart of
    /// [`Session::validate`]; surfaced on the CLI as `cycleq lint`.
    pub fn analyze(&self) -> Vec<Diagnostic> {
        let mut diags = cycleq_analysis::analyze(&self.module);
        cycleq_analysis::attach_fixes(&self.module, &self.source, &mut diags);
        diags
    }

    /// Analyzes the loaded source and applies every machine-applicable fix
    /// to a fixed point: joinable overlaps (`CQ002`) are completed into
    /// orthogonal systems, derivable missing clauses (`CQ001`) inserted,
    /// and unreachable equations (`CQ005`) deleted. Returns the repaired
    /// source, how many fixes were applied, and the diagnostics remaining
    /// against it. The session itself is not mutated — load the returned
    /// source to prove against the repaired program. Surfaced on the CLI
    /// as `cycleq lint --fix`.
    pub fn analyze_with_fixes(&self) -> FixOutcome {
        cycleq_analysis::analyze_with_fixes(&self.source)
    }

    /// Goal names in declaration order.
    pub fn goal_names(&self) -> Vec<&str> {
        self.module.goals.iter().map(|g| g.name.as_str()).collect()
    }

    /// Attempts to prove the named goal.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownGoal`] for unknown names and
    /// [`Error::Check`] if a produced proof fails re-checking (a bug).
    pub fn prove(&self, goal: &str) -> Result<Verdict, Error> {
        self.prove_with_hints(goal, &[])
    }

    /// Attempts to prove the named goal, first proving the named hint goals
    /// and making them available as `(Subst)` lemmas (§6.2).
    ///
    /// # Errors
    ///
    /// As [`Session::prove`]; hints must also name declared goals.
    pub fn prove_with_hints(&self, goal: &str, hints: &[&str]) -> Result<Verdict, Error> {
        self.with_profile(|| self.prove_goal(goal, hints, &Budget::unlimited(), None, None))
    }

    /// Attempts to prove the named goal under an external [`Budget`] and
    /// [`CancelToken`], on top of the engine configuration's own limits
    /// (the effective limit in each dimension is the tighter of the two).
    ///
    /// Cancelling the token from another thread — any clone observes the
    /// same flag — makes the search return promptly with a
    /// [`Outcome::Cancelled`] verdict; the partial preproof and the
    /// statistics gathered so far remain inspectable on the verdict.
    ///
    /// # Errors
    ///
    /// As [`Session::prove_with_hints`].
    pub fn prove_with_budget(
        &self,
        goal: &str,
        hints: &[&str],
        budget: &Budget,
        cancel: &CancelToken,
    ) -> Result<Verdict, Error> {
        self.with_profile(|| self.prove_goal(goal, hints, budget, Some(cancel), None))
    }

    /// The one prove path every public entry point funnels through: the
    /// fault boundary around [`Session::prove_goal_attempt`]. Each attempt
    /// runs under `catch_unwind`, so a panicking search (a prover bug, or a
    /// deterministic fault injected via `CYCLEQ_FAULTS`) becomes a
    /// structured [`Outcome::Panicked`] verdict instead of tearing down the
    /// caller; the engine's [`RetryPolicy`] then re-runs resource failures
    /// (timeout, node budget, panic) with budgets escalated per attempt.
    ///
    /// Metrics are recorded here — once per goal, on its **final** outcome —
    /// so retried attempts are never double-counted.
    fn prove_goal(
        &self,
        goal: &str,
        hints: &[&str],
        budget: &Budget,
        cancel: Option<&CancelToken>,
        observer: Option<cycleq_search::RoundObserver>,
    ) -> Result<Verdict, Error> {
        let policy = &self.settings.retry;
        // When a fault plan is installed, scope this thread to the goal's
        // name so `panic@site/goal` rules target it, and give `cancel@site`
        // rules a token to trip. An owned token backs the hook when the
        // caller did not pass one.
        let owned_cancel;
        let (cancel, _scope) = if cycleq_trace::faults_active() {
            owned_cancel = match cancel {
                Some(token) => token.clone(),
                None => CancelToken::new(),
            };
            let hook = {
                let token = owned_cancel.clone();
                Arc::new(move || token.cancel()) as Arc<dyn Fn() + Send + Sync>
            };
            (
                Some(&owned_cancel),
                Some(cycleq_trace::fault_scope_with_cancel(goal, hook)),
            )
        } else {
            (cancel, None)
        };
        let mut attempt = 1u32;
        loop {
            let attempt_budget = policy.escalate_budget(budget, attempt);
            let attempt_config = policy.escalate_config(&self.settings.config, attempt);
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                self.prove_goal_attempt(
                    goal,
                    hints,
                    &attempt_budget,
                    &attempt_config,
                    cancel,
                    observer.clone(),
                )
            }))
            .unwrap_or_else(|payload| {
                metrics::record_goal_panic();
                let message = cycleq_batch::panic_message(payload.as_ref());
                Ok(self.panicked_verdict(goal, message, attempt))
            });
            let retryable = match &outcome {
                Ok(v) => policy.should_retry(&v.result.outcome, attempt),
                Err(_) => false,
            };
            if retryable {
                metrics::record_goal_retry();
                if let Some(backoff) = policy.backoff {
                    std::thread::sleep(backoff);
                }
                attempt += 1;
                continue;
            }
            // Absorb the goal into the process-wide registry here — the one
            // funnel every prove path passes through — so each goal counts
            // exactly once regardless of entry point, worker, or retry
            // count.
            let status = GoalStatus::of(&outcome);
            return match outcome {
                Ok(mut v) => {
                    v.attempts = attempt;
                    metrics::record_goal(status, &v.result.stats, v.recheck.as_ref());
                    Ok(v)
                }
                Err(e) => {
                    metrics::record_goal_error();
                    Err(e)
                }
            };
        }
    }

    /// A synthetic verdict for a goal whose search attempt panicked: the
    /// structured failure the fault boundary substitutes for the unwind.
    fn panicked_verdict(&self, goal: &str, message: String, attempts: u32) -> Verdict {
        Verdict {
            goal: goal.to_string(),
            result: ProofResult {
                outcome: Outcome::Panicked { message },
                proof: Preproof::with_vars(VarStore::new()),
                stats: SearchStats::default(),
            },
            recheck: None,
            attempts,
            sig: self.module.program.sig.clone(),
        }
    }

    /// One search attempt, on explicit limits (the retry wrapper escalates
    /// them per attempt). Records no metrics: the wrapper does, once, on the
    /// goal's final outcome.
    fn prove_goal_attempt(
        &self,
        goal: &str,
        hints: &[&str],
        budget: &Budget,
        config: &SearchConfig,
        cancel: Option<&CancelToken>,
        observer: Option<cycleq_search::RoundObserver>,
    ) -> Result<Verdict, Error> {
        let g = self
            .module
            .goal(goal)
            .ok_or_else(|| Error::UnknownGoal(goal.to_string()))?;
        let mut vars = g.vars.clone();
        let mut hint_eqs = Vec::with_capacity(hints.len());
        for h in hints {
            let hd = self
                .module
                .goal(h)
                .ok_or_else(|| Error::UnknownGoal(h.to_string()))?;
            hint_eqs.push(hd.rename_into(&mut vars));
        }
        let mut prover = Prover::with_config(&self.module.program, config.clone());
        if let Some(cache) = &self.cache {
            prover = prover.with_shared_cache(cache.clone());
        }
        if let Some(observer) = observer {
            prover = prover.with_round_observer(observer);
        }
        let result = prover.prove_with_budget(g.eq.clone(), vars, &hint_eqs, budget, cancel);
        let mut recheck = None;
        if self.settings.recheck {
            if let Outcome::Proved { .. } = result.outcome {
                // The interned checker: same verdict as the owned-term
                // `check` (pinned by the differential property test), but
                // reducts are derived on a private hash-consed store and
                // memoized across the proof's nodes.
                let report = check_interned(
                    &result.proof,
                    &self.module.program,
                    GlobalCheck::VariableTraces,
                )
                .map_err(Error::Check)?;
                recheck = Some(report);
            }
        }
        Ok(Verdict {
            goal: goal.to_string(),
            result,
            recheck,
            attempts: 1,
            sig: self.module.program.sig.clone(),
        })
    }

    /// Serializes a proved verdict into a self-contained certificate: the
    /// program source (fingerprinted), the proof's variables, nodes and
    /// rule instances, and its size-change edge graphs. The text can be
    /// written to a file and later re-validated — on any machine, without
    /// the original session — via [`check_certificate`] or the `cycleq
    /// check` subcommand.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NoProof`] when the verdict carries no proof.
    pub fn export_certificate(&self, verdict: &Verdict) -> Result<String, Error> {
        match verdict.result.outcome {
            Outcome::Proved { .. } => Ok(cycleq_proof::export_certificate(
                &verdict.goal,
                &self.source,
                &verdict.result.proof,
            )),
            _ => Err(Error::NoProof),
        }
    }

    /// Attempts to prove **every declared goal**, fanning the batch out
    /// across [`Session::jobs`] workers. Results come back in declaration
    /// order regardless of which worker finished when; each worker owns its
    /// own term store and memo table, with the session's shared normal-form
    /// cache the only synchronised state. Streams [`ProveEvent`]s to the
    /// engine's sink, when one is configured.
    pub fn prove_all(&self) -> BatchReport {
        let (budget, cancel) = engine::unbounded();
        self.prove_all_with(&budget, &cancel)
    }

    /// [`Session::prove_all`] under an external batch [`Budget`] and
    /// [`CancelToken`]. See [`Session::prove_many_with`] for how a batch
    /// deadline is apportioned across goals.
    pub fn prove_all_with(&self, budget: &Budget, cancel: &CancelToken) -> BatchReport {
        let goals: Vec<String> = self.module.goals.iter().map(|g| g.name.clone()).collect();
        let goal_refs: Vec<&str> = goals.iter().map(String::as_str).collect();
        self.prove_many_with(&goal_refs, &[], budget, cancel)
            .expect("declared goal names are always known")
    }

    /// Attempts to prove the named goals (each with the given hints),
    /// batched across [`Session::jobs`] workers, returning per-goal
    /// verdicts in the order the goals were requested.
    ///
    /// Duplicate goal names in the request are **deduplicated, preserving
    /// the first occurrence**: proving a goal twice in one batch would do
    /// identical work for identical verdicts, so the report carries one
    /// entry per distinct goal, in first-occurrence order.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownGoal`] when any requested goal or hint does
    /// not name a declared goal — validated up front, before any search
    /// runs. Per-goal failures (including a proof failing re-checking) are
    /// reported inside the corresponding [`GoalReport`], not as a batch
    /// error.
    pub fn prove_many(&self, goals: &[&str], hints: &[&str]) -> Result<BatchReport, Error> {
        let (budget, cancel) = engine::unbounded();
        self.prove_many_with(goals, hints, &budget, &cancel)
    }

    /// [`Session::prove_many`] under an external batch [`Budget`] and
    /// [`CancelToken`].
    ///
    /// The budget's node and fuel ceilings apply to **each goal**; its
    /// wall-clock ceiling bounds the **whole batch** and is apportioned
    /// into per-goal slices: a goal starting with `r` time remaining and
    /// `g` goals not yet started (out of `w` workers) receives
    /// `min(r, r·w/g)`. One explosive goal therefore exhausts only its
    /// slice, and cheap goals scheduled after it still get their share —
    /// the batch as a whole never overruns the deadline. Cancelling the
    /// token aborts every running and queued goal promptly; finished goals
    /// keep their verdicts and the rest report
    /// [`Outcome::Cancelled`]-carrying verdicts in the returned report.
    ///
    /// # Errors
    ///
    /// As [`Session::prove_many`].
    pub fn prove_many_with(
        &self,
        goals: &[&str],
        hints: &[&str],
        budget: &Budget,
        cancel: &CancelToken,
    ) -> Result<BatchReport, Error> {
        for name in goals.iter().chain(hints) {
            if self.module.goal(name).is_none() {
                return Err(Error::UnknownGoal(name.to_string()));
            }
        }
        // Dedupe, preserving first occurrence (see `prove_many` docs).
        let mut seen = std::collections::HashSet::new();
        let goals: Vec<&str> = goals
            .iter()
            .copied()
            .filter(|name| seen.insert(*name))
            .collect();
        let total = goals.len();
        let costs: Vec<u64> = goals.iter().map(|name| self.predicted_cost(name)).collect();
        let metrics_before = cycleq_trace::metrics().snapshot();
        let start = Instant::now();
        let batch_deadline = budget.timeout.map(|d| start + d);
        let scheduler = BatchScheduler::new(self.settings.jobs);
        let workers = scheduler.jobs().min(total.max(1)) as u32;
        let started = AtomicUsize::new(0);
        let sink = self.settings.sink.clone();
        let tasks: Vec<_> = goals
            .iter()
            .enumerate()
            .map(|(index, &name)| {
                let sink = sink.clone();
                let started = &started;
                move |_worker: usize| {
                    let goal_start = Instant::now();
                    if let Some(sink) = &sink {
                        sink.event(&ProveEvent::GoalStarted {
                            index,
                            goal: name.to_string(),
                        });
                    }
                    let goal_budget = match batch_deadline {
                        None => budget.clone(),
                        Some(deadline) => {
                            let remaining = deadline.saturating_duration_since(goal_start);
                            let not_started =
                                total.saturating_sub(started.load(Ordering::Relaxed)).max(1);
                            let slice = remaining
                                .checked_mul(workers)
                                .map(|r| r / u32::try_from(not_started).unwrap_or(u32::MAX))
                                .unwrap_or(remaining)
                                .min(remaining);
                            let mut b = budget.clone();
                            b.timeout = Some(slice);
                            b
                        }
                    };
                    started.fetch_add(1, Ordering::Relaxed);
                    let observer = sink.as_ref().map(|sink| {
                        let sink = sink.clone();
                        let goal = name.to_string();
                        Arc::new(move |depth: usize, elapsed: Duration| {
                            sink.event(&ProveEvent::RoundDeepened {
                                index,
                                goal: goal.clone(),
                                depth,
                                elapsed,
                            });
                        }) as cycleq_search::RoundObserver
                    });
                    let outcome =
                        self.prove_goal(name, hints, &goal_budget, Some(cancel), observer);
                    let attempts = outcome.as_ref().map_or(1, |v| v.attempts);
                    let report = GoalReport {
                        goal: name.to_string(),
                        outcome,
                        attempts,
                        time: goal_start.elapsed(),
                    };
                    if let Some(sink) = &sink {
                        sink.event(&ProveEvent::GoalFinished {
                            index,
                            goal: report.goal.clone(),
                            status: GoalStatus::of(&report.outcome),
                            time: report.time,
                        });
                    }
                    report
                }
            })
            .collect();
        // The catching variant is a second fault boundary: `prove_goal`
        // already isolates panics inside the search, so a `TaskPanic` here
        // means the panic escaped that inner boundary (e.g. inside an event
        // sink). It still becomes a structured per-goal report rather than
        // tearing down the batch.
        let reports: Vec<GoalReport> = scheduler
            .run_with_costs_catching(tasks, &costs)
            .into_iter()
            .zip(&goals)
            .map(|(result, &name)| {
                result.unwrap_or_else(|panic| {
                    metrics::record_goal_panic();
                    let verdict = self.panicked_verdict(name, panic.message, 1);
                    metrics::record_goal(GoalStatus::Panicked, &verdict.result.stats, None);
                    GoalReport {
                        goal: name.to_string(),
                        outcome: Ok(verdict),
                        attempts: 1,
                        time: Duration::ZERO,
                    }
                })
            })
            .collect();
        let mut stats = SearchStats::default();
        let mut recheck = Duration::ZERO;
        for r in &reports {
            if let Ok(v) = &r.outcome {
                stats.absorb(&v.result.stats);
                if let Some(c) = &v.recheck {
                    recheck += c.elapsed;
                }
            }
        }
        // Wall clock of the whole batch, not the sum of per-goal times:
        // with jobs > 1 the sum exceeds the wall clock by design.
        stats.elapsed = start.elapsed();
        let report = BatchReport {
            goals: reports,
            stats,
            jobs: scheduler.jobs(),
            cache: self.shared_cache_stats(),
            recheck,
        };
        if let Some(sink) = &sink {
            sink.event(&ProveEvent::BatchFinished {
                proved: report.proved(),
                total: report.goals.len(),
                elapsed: report.stats.elapsed,
            });
        }
        *cycleq_trace::lock_recover(&self.last_profile) = Some(
            cycleq_trace::metrics()
                .snapshot()
                .delta(&metrics_before)
                .profile(),
        );
        Ok(report)
    }

    /// Predicted relative cost of a goal for batch seeding: the recorded
    /// time from a previous run when available ([`Session::with_cost_hints`]),
    /// the goal equation's term size otherwise.
    ///
    /// Recorded times (microseconds) and term sizes (node counts) are
    /// incomparable units, so when hints exist a goal *without* one is
    /// treated pessimistically — at least as heavy as the heaviest hinted
    /// goal. An unknown goal is the risky one: seeding it first costs
    /// nothing if it turns out cheap (work stealing mops up), while
    /// seeding it last recreates exactly the tail latency this ordering
    /// exists to avoid.
    fn predicted_cost(&self, goal: &str) -> u64 {
        if let Some(&cost) = self.cost_hints.get(goal) {
            return cost;
        }
        let size = self
            .module
            .goal(goal)
            .map(|g| u64::try_from(g.eq.size()).unwrap_or(u64::MAX))
            .unwrap_or(1);
        let heaviest_hint = self.cost_hints.values().copied().max().unwrap_or(0);
        size.max(heaviest_hint)
    }
}

/// The outcome of one goal within a batch.
#[derive(Clone, Debug)]
pub struct GoalReport {
    /// The goal's name.
    pub goal: String,
    /// The verdict, or the per-goal error (e.g. a proof that failed
    /// re-checking).
    pub outcome: Result<Verdict, Error>,
    /// Search attempts this goal took (1 unless the engine's
    /// [`RetryPolicy`] re-ran a resource failure with escalated budgets).
    pub attempts: u32,
    /// Wall-clock time this goal occupied its worker (parse excluded,
    /// search and re-check included).
    pub time: Duration,
}

impl GoalReport {
    /// The verdict, when the goal ran to a verdict.
    pub fn verdict(&self) -> Option<&Verdict> {
        self.outcome.as_ref().ok()
    }

    /// Whether the goal was proved (and, if enabled, re-checked).
    pub fn is_proved(&self) -> bool {
        self.verdict().is_some_and(Verdict::is_proved)
    }

    /// Whether the goal was refuted.
    pub fn is_refuted(&self) -> bool {
        self.verdict().is_some_and(Verdict::is_refuted)
    }

    /// Whether the goal's search panicked (final attempt included) and was
    /// isolated by the fault boundary.
    pub fn is_panicked(&self) -> bool {
        self.verdict()
            .is_some_and(|v| matches!(v.result.outcome, Outcome::Panicked { .. }))
    }

    /// The independent re-check's report, when one ran for this goal.
    pub fn recheck(&self) -> Option<&CheckReport> {
        self.verdict().and_then(|v| v.recheck.as_ref())
    }
}

/// The outcome of validating one certificate ([`check_certificate`]).
#[derive(Clone, Debug)]
pub struct CertificateCheck {
    /// The goal name the certificate proves.
    pub goal: String,
    /// The checker's report for the embedded proof.
    pub report: CheckReport,
}

/// Validates certificate text end to end: parse (version, structure,
/// program fingerprint), re-elaborate the embedded program source, compare
/// the serialized size-change edge graphs against recomputed ones, and run
/// the embedded proof through the independent interned checker. Nothing
/// from the proving session is trusted — only the bytes of the certificate.
///
/// # Errors
///
/// [`Error::Certificate`] for parse/tamper/check failures and
/// [`Error::Lang`] when the embedded program no longer elaborates.
pub fn check_certificate(text: &str) -> Result<CertificateCheck, Error> {
    let cert = Certificate::parse(text).map_err(Error::Certificate)?;
    let module = cycleq_lang::parse_module(cert.program_src())?;
    let report = cert.verify(&module.program).map_err(Error::Certificate)?;
    metrics::record_check(&report);
    Ok(CertificateCheck {
        goal: cert.goal().to_string(),
        report,
    })
}

/// The outcome of [`Session::prove_all`]/[`Session::prove_many`]:
/// deterministic, declaration-ordered per-goal reports plus aggregates.
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// Per-goal reports, in the order the goals were requested (declaration
    /// order for [`Session::prove_all`]) — independent of completion order.
    pub goals: Vec<GoalReport>,
    /// Search counters summed over all goals. `elapsed` is the wall clock
    /// of the whole batch; the gauges (`closure_graphs`,
    /// `interned_nodes`, `interned_graphs`) are summed across goals.
    pub stats: SearchStats,
    /// Worker threads used.
    pub jobs: usize,
    /// Shared normal-form cache counters at the end of the batch
    /// (session-lifetime totals, so earlier `prove` calls count too).
    pub cache: CacheStats,
    /// Total time spent in the independent re-checker, summed across the
    /// proved goals (zero when re-checking is disabled). Summed CPU time,
    /// not wall clock: with `jobs > 1` rechecks overlap.
    pub recheck: Duration,
}

impl BatchReport {
    /// Number of proved goals.
    pub fn proved(&self) -> usize {
        self.goals.iter().filter(|g| g.is_proved()).count()
    }

    /// Whether every goal in the batch was proved.
    pub fn all_proved(&self) -> bool {
        self.goals.iter().all(GoalReport::is_proved)
    }

    /// Whether any goal was refuted (a ground counterexample exists).
    pub fn any_refuted(&self) -> bool {
        self.goals.iter().any(GoalReport::is_refuted)
    }

    /// Whether any goal ended without a proof or refutation (exhausted,
    /// timeout, node budget, failed hint, panicked, or a per-goal error).
    pub fn any_gave_up(&self) -> bool {
        self.goals.iter().any(|g| !g.is_proved() && !g.is_refuted())
    }

    /// Number of goals whose search panicked and was isolated by the fault
    /// boundary (their reports carry [`Outcome::Panicked`] verdicts).
    pub fn panicked(&self) -> usize {
        self.goals.iter().filter(|g| g.is_panicked()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "data Nat = Z | S Nat
add :: Nat -> Nat -> Nat
add Z y = y
add (S x) y = S (add x y)
goal comm: add x y === add y x
goal zeroRight: add x Z === x
goal wrong: add x Z === Z
";

    #[test]
    fn session_proves_and_renders() {
        let s = Session::from_source(SRC).unwrap();
        let v = s.prove("comm").unwrap();
        assert!(v.is_proved());
        let text = v.render_proof().unwrap();
        assert!(text.contains("[Case"));
        let dot = v.render_dot().unwrap();
        assert!(dot.starts_with("digraph"));
    }

    #[test]
    fn session_refutes() {
        let s = Session::from_source(SRC).unwrap();
        let v = s.prove("wrong").unwrap();
        assert!(v.is_refuted());
        assert!(v.render_proof().is_err());
    }

    #[test]
    fn proved_verdicts_carry_a_recheck_report() {
        let s = Session::from_source(SRC).unwrap();
        let v = s.prove("comm").unwrap();
        let recheck = v.recheck.expect("recheck is on by default");
        assert!(recheck.global_verified);
        assert!(recheck.nodes > 0);
        let refuted = s.prove("wrong").unwrap();
        assert!(refuted.recheck.is_none());
    }

    #[test]
    fn certificate_round_trips_through_check_certificate() {
        let s = Session::from_source(SRC).unwrap();
        let v = s.prove("comm").unwrap();
        let text = s.export_certificate(&v).unwrap();
        let checked = check_certificate(&text).unwrap();
        assert_eq!(checked.goal, "comm");
        assert!(checked.report.global_verified);
        assert_eq!(checked.report.nodes, v.result.proof.len());
    }

    #[test]
    fn export_certificate_requires_a_proof() {
        let s = Session::from_source(SRC).unwrap();
        let v = s.prove("wrong").unwrap();
        assert!(matches!(s.export_certificate(&v), Err(Error::NoProof)));
    }

    #[test]
    fn tampered_certificates_are_rejected() {
        let s = Session::from_source(SRC).unwrap();
        let v = s.prove("comm").unwrap();
        let text = s.export_certificate(&v).unwrap();
        // Tamper with the embedded program: fingerprint mismatch.
        let tampered = text.replace("add Z y = y", "add Z y = Z");
        assert!(matches!(
            check_certificate(&tampered),
            Err(Error::Certificate(
                CertificateError::FingerprintMismatch { .. }
            ))
        ));
        // Drop trailing lines: truncated.
        let lines: Vec<&str> = text.lines().collect();
        let partial = lines[..lines.len() - 3].join("\n");
        assert!(matches!(
            check_certificate(&partial),
            Err(Error::Certificate(CertificateError::Truncated))
        ));
    }

    #[test]
    fn batch_report_accumulates_recheck_time() {
        let s = Session::from_source(SRC).unwrap();
        let report = s.prove_all();
        // At least `comm` and `zeroRight` are proved and rechecked; the
        // summed duration is whatever it is, but the reports must be there.
        assert!(report.goals.iter().any(|g| g.recheck().is_some()));
        assert!(report
            .goals
            .iter()
            .filter(|g| !g.is_proved())
            .all(|g| g.recheck().is_none()));
    }

    #[test]
    fn unknown_goals_error() {
        let s = Session::from_source(SRC).unwrap();
        assert!(matches!(s.prove("nope"), Err(Error::UnknownGoal(_))));
    }

    #[test]
    fn goal_names_in_order() {
        let s = Session::from_source(SRC).unwrap();
        assert_eq!(s.goal_names(), vec!["comm", "zeroRight", "wrong"]);
    }

    #[test]
    fn hints_are_imported_by_name() {
        let src = "data Nat = Z | S Nat
add :: Nat -> Nat -> Nat
add Z y = y
add (S x) y = S (add x y)
goal succRight: add x (S y) === S (add x y)
goal comm: add x y === add y x
";
        let s = Session::from_source(src).unwrap();
        let v = s.prove_with_hints("comm", &["succRight"]).unwrap();
        assert!(v.is_proved());
    }

    #[test]
    fn prove_all_reports_every_goal_in_declaration_order() {
        for jobs in [1, 4] {
            let s = Engine::builder().jobs(jobs).build().load(SRC).unwrap();
            let report = s.prove_all();
            assert_eq!(report.jobs, jobs);
            let names: Vec<&str> = report.goals.iter().map(|g| g.goal.as_str()).collect();
            assert_eq!(names, vec!["comm", "zeroRight", "wrong"]);
            assert!(report.goals[0].is_proved());
            assert!(report.goals[1].is_proved());
            assert!(report.goals[2].is_refuted());
            assert_eq!(report.proved(), 2);
            assert!(!report.all_proved());
            assert!(report.any_refuted());
            assert!(!report.any_gave_up());
            assert!(report.stats.nodes_created > 0);
        }
    }

    #[test]
    fn batch_shares_reductions_through_the_session_cache() {
        let s = Engine::builder().jobs(2).build().load(SRC).unwrap();
        let report = s.prove_all();
        assert!(
            report.stats.shared_cache_hits > 0,
            "goals over one program must share normal forms: {:?}",
            report.stats
        );
        assert!(report.cache.entries > 0);
        assert_eq!(report.cache.hits, report.stats.shared_cache_hits);
    }

    #[test]
    fn prove_many_validates_names_up_front() {
        let s = Session::from_source(SRC).unwrap();
        assert!(matches!(
            s.prove_many(&["comm", "nope"], &[]),
            Err(Error::UnknownGoal(n)) if n == "nope"
        ));
        assert!(matches!(
            s.prove_many(&["comm"], &["missingHint"]),
            Err(Error::UnknownGoal(_))
        ));
        let subset = s.prove_many(&["zeroRight"], &[]).unwrap();
        assert_eq!(subset.goals.len(), 1);
        assert!(subset.goals[0].is_proved());
    }

    #[test]
    fn jobs_zero_selects_hardware_parallelism() {
        let s = Engine::builder().jobs(0).build().load(SRC).unwrap();
        assert!(s.jobs() >= 1);
    }

    #[test]
    fn disabled_shared_cache_still_proves() {
        let s = Engine::builder()
            .shared_cache(false)
            .build()
            .load(SRC)
            .unwrap();
        let v = s.prove("comm").unwrap();
        assert!(v.is_proved());
        assert_eq!(s.shared_cache_stats(), CacheStats::default());
    }

    #[test]
    fn bounded_cache_engine_still_proves_and_reports_capacity() {
        let s = Engine::builder()
            .cache_capacity(1_000)
            .build()
            .load(SRC)
            .unwrap();
        let report = s.prove_all();
        assert_eq!(report.proved(), 2);
        // No eviction pressure at this size, but the plumbing is live.
        assert_eq!(report.cache.evictions, 0);
        assert!(report.cache.entries > 0);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_session_mutators_still_work() {
        // The pre-engine API remains a working shim (with deprecation
        // notes pointing at EngineBuilder).
        let s = Session::from_source(SRC)
            .unwrap()
            .with_config(SearchConfig::default())
            .with_jobs(2)
            .without_recheck();
        assert_eq!(s.jobs(), 2);
        let report = s.prove_all();
        assert_eq!(report.proved(), 2);
        let cold = Session::from_source(SRC).unwrap().without_shared_cache();
        assert!(cold.prove("comm").unwrap().is_proved());
        assert_eq!(cold.shared_cache_stats(), CacheStats::default());
    }

    #[test]
    fn prove_many_dedupes_duplicate_goal_names_preserving_first_occurrence() {
        let s = Session::from_source(SRC).unwrap();
        let report = s
            .prove_many(
                &["zeroRight", "comm", "zeroRight", "comm", "zeroRight"],
                &[],
            )
            .unwrap();
        let names: Vec<&str> = report.goals.iter().map(|g| g.goal.as_str()).collect();
        assert_eq!(names, vec!["zeroRight", "comm"]);
        assert!(report.all_proved());
    }

    #[test]
    fn prove_all_streams_events_for_every_goal() {
        use std::sync::Mutex;

        #[derive(Default)]
        struct Collect(Mutex<Vec<ProveEvent>>);
        impl EventSink for Collect {
            fn event(&self, event: &ProveEvent) {
                self.0.lock().unwrap().push(event.clone());
            }
        }

        let sink = Arc::new(Collect::default());
        for jobs in [1, 4] {
            sink.0.lock().unwrap().clear();
            let events = sink.clone();
            let engine = Engine::builder()
                .jobs(jobs)
                .event_sink(move |ev: &ProveEvent| events.event(ev))
                .build();
            let s = engine.load(SRC).unwrap();
            let report = s.prove_all();
            assert_eq!(report.proved(), 2);

            let log = sink.0.lock().unwrap();
            let started: Vec<usize> = log
                .iter()
                .filter_map(|e| match e {
                    ProveEvent::GoalStarted { index, .. } => Some(*index),
                    _ => None,
                })
                .collect();
            let finished: Vec<(usize, GoalStatus)> = log
                .iter()
                .filter_map(|e| match e {
                    ProveEvent::GoalFinished { index, status, .. } => Some((*index, *status)),
                    _ => None,
                })
                .collect();
            assert_eq!(started.len(), 3, "jobs={jobs}: {log:?}");
            assert_eq!(finished.len(), 3, "jobs={jobs}");
            // Every goal index appears exactly once in both streams.
            for idx in 0..3 {
                assert_eq!(started.iter().filter(|&&i| i == idx).count(), 1);
                assert_eq!(finished.iter().filter(|&(i, _)| *i == idx).count(), 1);
            }
            // Statuses agree with the declaration-ordered report.
            for (idx, status) in &finished {
                assert_eq!(
                    *status,
                    GoalStatus::of(&report.goals[*idx].outcome),
                    "jobs={jobs} goal {idx}"
                );
            }
            // The terminal event closes the stream with the batch totals.
            assert!(matches!(
                log.last(),
                Some(ProveEvent::BatchFinished {
                    proved: 2,
                    total: 3,
                    ..
                })
            ));
        }
    }

    #[test]
    fn cost_hints_from_a_previous_report_reorder_scheduling() {
        let s = Session::from_source(SRC).unwrap();
        let first = s.prove_all();
        let warmed = s.clone().with_cost_hints(&first);
        let second = warmed.prove_all();
        // Identical verdicts whatever the seeding order.
        for (a, b) in first.goals.iter().zip(&second.goals) {
            assert_eq!(a.goal, b.goal);
            assert_eq!(a.is_proved(), b.is_proved());
        }
    }

    #[test]
    fn cancelled_single_prove_reports_cancelled_outcome() {
        let s = Session::from_source(SRC).unwrap();
        let token = CancelToken::new();
        token.cancel();
        let v = s
            .prove_with_budget("comm", &[], &Budget::unlimited(), &token)
            .unwrap();
        assert_eq!(v.result.outcome, Outcome::Cancelled);
        assert!(!v.is_proved());
        assert!(!v.is_refuted());
    }

    #[test]
    fn repeated_prove_calls_reuse_the_cache() {
        let s = Session::from_source(SRC).unwrap();
        let first = s.prove("comm").unwrap();
        let second = s.prove("comm").unwrap();
        assert!(second.result.stats.shared_cache_hits > 0);
        assert_eq!(
            first.is_proved(),
            second.is_proved(),
            "cache reuse must not change the verdict"
        );
    }

    #[test]
    fn analyze_is_clean_on_the_quickstart_and_structured_on_violations() {
        let s = Session::from_source(SRC).unwrap();
        assert!(s.analyze().is_empty());
        let dodgy =
            Session::from_source("data Nat = Z | S Nat\nloop :: Nat -> Nat\nloop x = loop x\n")
                .unwrap();
        let ds = dodgy.analyze();
        assert!(ds.iter().any(|d| d.code == Code::SizeChange));
        // Mirrors the legacy string-based validate().
        assert!(!dodgy.validate().is_empty());
    }

    #[test]
    fn parse_errors_surface() {
        assert!(matches!(
            Session::from_source("data = |"),
            Err(Error::Lang(_))
        ));
    }
}
