//! # CycleQ — an efficient basis for cyclic equational reasoning
//!
//! A from-scratch Rust implementation of the system described in
//! *Jones, Ong, Ramsay. "CycleQ: An Efficient Basis for Cyclic Equational
//! Reasoning" (PLDI 2022)*: a cyclic proof calculus for equational
//! properties of pure functional programs, a goal-directed proof search
//! with contextual substitution as its cut/matching rule, and incremental
//! global-correctness checking via size-change graphs.
//!
//! This crate is the facade over the workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`cycleq_term`] | terms, types, signatures, matching, unification (§2) |
//! | [`cycleq_rewrite`] | rewrite systems, reduction, orders, narrowing (§2, §4) |
//! | [`cycleq_sizechange`] | size-change graphs and closures (§5.2) |
//! | [`cycleq_proof`] | preproofs, the independent checker, rendering (§3) |
//! | [`cycleq_search`] | the CycleQ proof search (§5.1, §6) |
//! | [`cycleq_lang`] | the Haskell-like frontend (§6) |
//! | [`cycleq_ri`] | rewriting induction and the Thm 4.3 translation (§4) |
//!
//! # Quickstart
//!
//! ```
//! use cycleq::Session;
//!
//! let session = Session::from_source(
//!     "data Nat = Z | S Nat
//!      add :: Nat -> Nat -> Nat
//!      add Z y = y
//!      add (S x) y = S (add x y)
//!      goal comm: add x y === add y x",
//! )
//! .unwrap();
//! let verdict = session.prove("comm").unwrap();
//! assert!(verdict.is_proved());
//! println!("{}", verdict.render_proof().unwrap());
//! ```

use std::error::Error as StdError;
use std::fmt;

pub use cycleq_lang::{GoalDef, LangError, Module};
pub use cycleq_proof::{
    check, check_global, check_global_incremental, cycle_witnesses, global_edges, render_dot,
    render_text, CheckReport, GlobalCheck, NodeId, Preproof, RuleApp,
};
pub use cycleq_rewrite::Program;
pub use cycleq_search::{LemmaPolicy, Outcome, ProofResult, Prover, SearchConfig, SearchStats};
pub use cycleq_term::{Equation, Signature, Term, Type, VarStore};

/// Errors surfaced by a [`Session`].
#[derive(Clone, Debug)]
pub enum Error {
    /// The source failed to parse or type check.
    Lang(LangError),
    /// No goal with the given name exists.
    UnknownGoal(String),
    /// A produced proof failed the independent checker — indicates a bug.
    Check(cycleq_proof::CheckError),
    /// The verdict does not carry a proof (e.g. refuted or exhausted).
    NoProof,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Lang(e) => write!(f, "{e}"),
            Error::UnknownGoal(g) => write!(f, "unknown goal `{g}`"),
            Error::Check(e) => write!(f, "proof failed re-checking: {e}"),
            Error::NoProof => write!(f, "no proof available for this verdict"),
        }
    }
}

impl StdError for Error {}

impl From<LangError> for Error {
    fn from(e: LangError) -> Error {
        Error::Lang(e)
    }
}

/// The outcome of proving one goal, bundling the proof and statistics with
/// enough context to render them.
#[derive(Clone, Debug)]
pub struct Verdict {
    /// The goal's name.
    pub goal: String,
    /// The raw search result.
    pub result: ProofResult,
    /// Signature snapshot for rendering.
    sig: Signature,
}

impl Verdict {
    /// Whether the goal was proved.
    pub fn is_proved(&self) -> bool {
        self.result.outcome.is_proved()
    }

    /// Whether the goal was refuted (a ground counterexample exists).
    pub fn is_refuted(&self) -> bool {
        matches!(self.result.outcome, Outcome::Refuted)
    }

    /// Renders the proof tree, with back edges labelled as in the paper's
    /// figures.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NoProof`] when the verdict carries no proof.
    pub fn render_proof(&self) -> Result<String, Error> {
        match self.result.outcome {
            Outcome::Proved { root } => Ok(cycleq_proof::render_text(
                &self.result.proof,
                &self.sig,
                root,
            )),
            _ => Err(Error::NoProof),
        }
    }

    /// Renders the proof graph as Graphviz DOT.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NoProof`] when the verdict carries no proof.
    pub fn render_dot(&self) -> Result<String, Error> {
        match self.result.outcome {
            Outcome::Proved { .. } => Ok(cycleq_proof::render_dot(&self.result.proof, &self.sig)),
            _ => Err(Error::NoProof),
        }
    }
}

/// A loaded program with its goals: the main entry point of the library.
#[derive(Clone, Debug)]
pub struct Session {
    module: Module,
    config: SearchConfig,
    /// Re-check every proof with the independent checker before returning
    /// it (on by default; the cost is negligible next to search).
    recheck: bool,
}

impl Session {
    /// Parses, type checks and loads a program.
    ///
    /// # Errors
    ///
    /// Returns the first frontend error.
    pub fn from_source(src: &str) -> Result<Session, Error> {
        Ok(Session {
            module: cycleq_lang::parse_module(src)?,
            config: SearchConfig::default(),
            recheck: true,
        })
    }

    /// Replaces the search configuration.
    pub fn with_config(mut self, config: SearchConfig) -> Session {
        self.config = config;
        self
    }

    /// Disables post-hoc re-checking of proofs (for benchmarking raw search
    /// time).
    pub fn without_recheck(mut self) -> Session {
        self.recheck = false;
        self
    }

    /// The loaded module.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// The program (signature and rules).
    pub fn program(&self) -> &Program {
        &self.module.program
    }

    /// Warnings from validating the paper's standing assumptions
    /// (pattern completeness, orthogonality; Remark 2.1).
    pub fn validate(&self) -> Vec<String> {
        self.module.validate()
    }

    /// Goal names in declaration order.
    pub fn goal_names(&self) -> Vec<&str> {
        self.module.goals.iter().map(|g| g.name.as_str()).collect()
    }

    /// Attempts to prove the named goal.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownGoal`] for unknown names and
    /// [`Error::Check`] if a produced proof fails re-checking (a bug).
    pub fn prove(&self, goal: &str) -> Result<Verdict, Error> {
        self.prove_with_hints(goal, &[])
    }

    /// Attempts to prove the named goal, first proving the named hint goals
    /// and making them available as `(Subst)` lemmas (§6.2).
    ///
    /// # Errors
    ///
    /// As [`Session::prove`]; hints must also name declared goals.
    pub fn prove_with_hints(&self, goal: &str, hints: &[&str]) -> Result<Verdict, Error> {
        let g = self
            .module
            .goal(goal)
            .ok_or_else(|| Error::UnknownGoal(goal.to_string()))?;
        let mut vars = g.vars.clone();
        let mut hint_eqs = Vec::with_capacity(hints.len());
        for h in hints {
            let hd = self
                .module
                .goal(h)
                .ok_or_else(|| Error::UnknownGoal(h.to_string()))?;
            hint_eqs.push(hd.rename_into(&mut vars));
        }
        let prover = Prover::with_config(&self.module.program, self.config.clone());
        let result = prover.prove_with_hints(g.eq.clone(), vars, &hint_eqs);
        if self.recheck {
            if let Outcome::Proved { .. } = result.outcome {
                check(
                    &result.proof,
                    &self.module.program,
                    GlobalCheck::VariableTraces,
                )
                .map_err(Error::Check)?;
            }
        }
        Ok(Verdict {
            goal: goal.to_string(),
            result,
            sig: self.module.program.sig.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "data Nat = Z | S Nat
add :: Nat -> Nat -> Nat
add Z y = y
add (S x) y = S (add x y)
goal comm: add x y === add y x
goal zeroRight: add x Z === x
goal wrong: add x Z === Z
";

    #[test]
    fn session_proves_and_renders() {
        let s = Session::from_source(SRC).unwrap();
        let v = s.prove("comm").unwrap();
        assert!(v.is_proved());
        let text = v.render_proof().unwrap();
        assert!(text.contains("[Case"));
        let dot = v.render_dot().unwrap();
        assert!(dot.starts_with("digraph"));
    }

    #[test]
    fn session_refutes() {
        let s = Session::from_source(SRC).unwrap();
        let v = s.prove("wrong").unwrap();
        assert!(v.is_refuted());
        assert!(v.render_proof().is_err());
    }

    #[test]
    fn unknown_goals_error() {
        let s = Session::from_source(SRC).unwrap();
        assert!(matches!(s.prove("nope"), Err(Error::UnknownGoal(_))));
    }

    #[test]
    fn goal_names_in_order() {
        let s = Session::from_source(SRC).unwrap();
        assert_eq!(s.goal_names(), vec!["comm", "zeroRight", "wrong"]);
    }

    #[test]
    fn hints_are_imported_by_name() {
        let src = "data Nat = Z | S Nat
add :: Nat -> Nat -> Nat
add Z y = y
add (S x) y = S (add x y)
goal succRight: add x (S y) === S (add x y)
goal comm: add x y === add y x
";
        let s = Session::from_source(src).unwrap();
        let v = s.prove_with_hints("comm", &["succRight"]).unwrap();
        assert!(v.is_proved());
    }

    #[test]
    fn parse_errors_surface() {
        assert!(matches!(
            Session::from_source("data = |"),
            Err(Error::Lang(_))
        ));
    }
}
