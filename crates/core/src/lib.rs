//! # CycleQ — an efficient basis for cyclic equational reasoning
//!
//! A from-scratch Rust implementation of the system described in
//! *Jones, Ong, Ramsay. "CycleQ: An Efficient Basis for Cyclic Equational
//! Reasoning" (PLDI 2022)*: a cyclic proof calculus for equational
//! properties of pure functional programs, a goal-directed proof search
//! with contextual substitution as its cut/matching rule, and incremental
//! global-correctness checking via size-change graphs.
//!
//! This crate is the facade over the workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`cycleq_term`] | terms, types, signatures, matching, unification (§2) |
//! | [`cycleq_rewrite`] | rewrite systems, reduction, orders, narrowing (§2, §4) |
//! | [`cycleq_sizechange`] | size-change graphs and closures (§5.2) |
//! | [`cycleq_proof`] | preproofs, the independent checker, rendering (§3) |
//! | [`cycleq_search`] | the CycleQ proof search (§5.1, §6) |
//! | [`cycleq_lang`] | the Haskell-like frontend (§6) |
//! | [`cycleq_ri`] | rewriting induction and the Thm 4.3 translation (§4) |
//! | [`cycleq_batch`] | parallel goal batching and the shared normal-form cache |
//!
//! # Quickstart
//!
//! ```
//! use cycleq::Session;
//!
//! let session = Session::from_source(
//!     "data Nat = Z | S Nat
//!      add :: Nat -> Nat -> Nat
//!      add Z y = y
//!      add (S x) y = S (add x y)
//!      goal comm: add x y === add y x",
//! )
//! .unwrap();
//! let verdict = session.prove("comm").unwrap();
//! assert!(verdict.is_proved());
//! println!("{}", verdict.render_proof().unwrap());
//! ```
//!
//! # Batch proving
//!
//! Goals are independent, so a multi-goal program can be proved as one
//! parallel batch; results come back in declaration order with aggregated
//! statistics, and goals share reductions through the session's
//! program-scoped normal-form cache:
//!
//! ```
//! use cycleq::Session;
//!
//! let session = Session::from_source(
//!     "data Nat = Z | S Nat
//!      add :: Nat -> Nat -> Nat
//!      add Z y = y
//!      add (S x) y = S (add x y)
//!      goal zeroRight: add x Z === x
//!      goal comm: add x y === add y x",
//! )
//! .unwrap()
//! .with_jobs(2);
//! let report = session.prove_all();
//! assert!(report.all_proved());
//! assert_eq!(report.goals[0].goal, "zeroRight");
//! ```

use std::error::Error as StdError;
use std::fmt;
use std::time::{Duration, Instant};

pub use cycleq_batch::{available_parallelism, BatchScheduler};
pub use cycleq_lang::{GoalDef, LangError, Module};
pub use cycleq_proof::{
    check, check_global, check_global_incremental, cycle_witnesses, global_edges, render_dot,
    render_text, CheckReport, GlobalCheck, NodeId, Preproof, RuleApp,
};
pub use cycleq_rewrite::{CacheStats, Program, SharedNormalFormCache};
pub use cycleq_search::{LemmaPolicy, Outcome, ProofResult, Prover, SearchConfig, SearchStats};
pub use cycleq_term::{Equation, Signature, Term, Type, VarStore};

/// Errors surfaced by a [`Session`].
#[derive(Clone, Debug)]
pub enum Error {
    /// The source failed to parse or type check.
    Lang(LangError),
    /// No goal with the given name exists.
    UnknownGoal(String),
    /// A produced proof failed the independent checker — indicates a bug.
    Check(cycleq_proof::CheckError),
    /// The verdict does not carry a proof (e.g. refuted or exhausted).
    NoProof,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Lang(e) => write!(f, "{e}"),
            Error::UnknownGoal(g) => write!(f, "unknown goal `{g}`"),
            Error::Check(e) => write!(f, "proof failed re-checking: {e}"),
            Error::NoProof => write!(f, "no proof available for this verdict"),
        }
    }
}

impl StdError for Error {}

impl From<LangError> for Error {
    fn from(e: LangError) -> Error {
        Error::Lang(e)
    }
}

/// The outcome of proving one goal, bundling the proof and statistics with
/// enough context to render them.
#[derive(Clone, Debug)]
pub struct Verdict {
    /// The goal's name.
    pub goal: String,
    /// The raw search result.
    pub result: ProofResult,
    /// Signature snapshot for rendering.
    sig: Signature,
}

impl Verdict {
    /// Whether the goal was proved.
    pub fn is_proved(&self) -> bool {
        self.result.outcome.is_proved()
    }

    /// Whether the goal was refuted (a ground counterexample exists).
    pub fn is_refuted(&self) -> bool {
        matches!(self.result.outcome, Outcome::Refuted)
    }

    /// Renders the proof tree, with back edges labelled as in the paper's
    /// figures.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NoProof`] when the verdict carries no proof.
    pub fn render_proof(&self) -> Result<String, Error> {
        match self.result.outcome {
            Outcome::Proved { root } => Ok(cycleq_proof::render_text(
                &self.result.proof,
                &self.sig,
                root,
            )),
            _ => Err(Error::NoProof),
        }
    }

    /// Renders the proof graph as Graphviz DOT.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NoProof`] when the verdict carries no proof.
    pub fn render_dot(&self) -> Result<String, Error> {
        match self.result.outcome {
            Outcome::Proved { .. } => Ok(cycleq_proof::render_dot(&self.result.proof, &self.sig)),
            _ => Err(Error::NoProof),
        }
    }
}

/// A loaded program with its goals: the main entry point of the library.
///
/// Clones share the program-scoped normal-form cache, so proving through a
/// clone warms the original and vice versa.
#[derive(Clone, Debug)]
pub struct Session {
    module: Module,
    config: SearchConfig,
    /// Re-check every proof with the independent checker before returning
    /// it (on by default; the cost is negligible next to search).
    recheck: bool,
    /// Worker threads used by [`Session::prove_all`]/[`Session::prove_many`]
    /// (1 = sequential, no threads).
    jobs: usize,
    /// The program-scoped shared normal-form cache. Every `prove` call
    /// consults and populates it, so reductions are shared across goals,
    /// hints, deepening rounds and worker threads. `None` only after
    /// [`Session::without_shared_cache`].
    cache: Option<SharedNormalFormCache>,
}

impl Session {
    /// Parses, type checks and loads a program.
    ///
    /// # Errors
    ///
    /// Returns the first frontend error.
    pub fn from_source(src: &str) -> Result<Session, Error> {
        Ok(Session {
            module: cycleq_lang::parse_module(src)?,
            config: SearchConfig::default(),
            recheck: true,
            jobs: 1,
            cache: Some(SharedNormalFormCache::new()),
        })
    }

    /// Replaces the search configuration.
    pub fn with_config(mut self, config: SearchConfig) -> Session {
        self.config = config;
        self
    }

    /// Disables post-hoc re-checking of proofs (for benchmarking raw search
    /// time).
    pub fn without_recheck(mut self) -> Session {
        self.recheck = false;
        self
    }

    /// Sets the worker count for [`Session::prove_all`] and
    /// [`Session::prove_many`]; `0` means one worker per hardware thread.
    pub fn with_jobs(mut self, jobs: usize) -> Session {
        self.jobs = if jobs == 0 {
            available_parallelism()
        } else {
            jobs
        };
        self
    }

    /// The configured worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Detaches the shared normal-form cache: every prove call recomputes
    /// all reductions from scratch (for benchmarking the cache itself).
    pub fn without_shared_cache(mut self) -> Session {
        self.cache = None;
        self
    }

    /// Hit/miss/size counters of the shared normal-form cache (all zero
    /// after [`Session::without_shared_cache`]).
    pub fn shared_cache_stats(&self) -> CacheStats {
        self.cache
            .as_ref()
            .map(SharedNormalFormCache::stats)
            .unwrap_or_default()
    }

    /// The loaded module.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// The program (signature and rules).
    pub fn program(&self) -> &Program {
        &self.module.program
    }

    /// Warnings from validating the paper's standing assumptions
    /// (pattern completeness, orthogonality; Remark 2.1).
    pub fn validate(&self) -> Vec<String> {
        self.module.validate()
    }

    /// Goal names in declaration order.
    pub fn goal_names(&self) -> Vec<&str> {
        self.module.goals.iter().map(|g| g.name.as_str()).collect()
    }

    /// Attempts to prove the named goal.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownGoal`] for unknown names and
    /// [`Error::Check`] if a produced proof fails re-checking (a bug).
    pub fn prove(&self, goal: &str) -> Result<Verdict, Error> {
        self.prove_with_hints(goal, &[])
    }

    /// Attempts to prove the named goal, first proving the named hint goals
    /// and making them available as `(Subst)` lemmas (§6.2).
    ///
    /// # Errors
    ///
    /// As [`Session::prove`]; hints must also name declared goals.
    pub fn prove_with_hints(&self, goal: &str, hints: &[&str]) -> Result<Verdict, Error> {
        let g = self
            .module
            .goal(goal)
            .ok_or_else(|| Error::UnknownGoal(goal.to_string()))?;
        let mut vars = g.vars.clone();
        let mut hint_eqs = Vec::with_capacity(hints.len());
        for h in hints {
            let hd = self
                .module
                .goal(h)
                .ok_or_else(|| Error::UnknownGoal(h.to_string()))?;
            hint_eqs.push(hd.rename_into(&mut vars));
        }
        let mut prover = Prover::with_config(&self.module.program, self.config.clone());
        if let Some(cache) = &self.cache {
            prover = prover.with_shared_cache(cache.clone());
        }
        let result = prover.prove_with_hints(g.eq.clone(), vars, &hint_eqs);
        if self.recheck {
            if let Outcome::Proved { .. } = result.outcome {
                check(
                    &result.proof,
                    &self.module.program,
                    GlobalCheck::VariableTraces,
                )
                .map_err(Error::Check)?;
            }
        }
        Ok(Verdict {
            goal: goal.to_string(),
            result,
            sig: self.module.program.sig.clone(),
        })
    }

    /// Attempts to prove **every declared goal**, fanning the batch out
    /// across [`Session::jobs`] workers. Results come back in declaration
    /// order regardless of which worker finished when; each worker owns its
    /// own term store and memo table, with the session's shared normal-form
    /// cache the only synchronised state.
    pub fn prove_all(&self) -> BatchReport {
        let goals: Vec<String> = self.module.goals.iter().map(|g| g.name.clone()).collect();
        let goal_refs: Vec<&str> = goals.iter().map(String::as_str).collect();
        self.prove_many(&goal_refs, &[])
            .expect("declared goal names are always known")
    }

    /// Attempts to prove the named goals (each with the given hints),
    /// batched across [`Session::jobs`] workers, returning per-goal
    /// verdicts in the order the goals were requested.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownGoal`] when any requested goal or hint does
    /// not name a declared goal — validated up front, before any search
    /// runs. Per-goal failures (including a proof failing re-checking) are
    /// reported inside the corresponding [`GoalReport`], not as a batch
    /// error.
    pub fn prove_many(&self, goals: &[&str], hints: &[&str]) -> Result<BatchReport, Error> {
        for name in goals.iter().chain(hints) {
            if self.module.goal(name).is_none() {
                return Err(Error::UnknownGoal(name.to_string()));
            }
        }
        let start = Instant::now();
        let scheduler = BatchScheduler::new(self.jobs);
        let tasks: Vec<_> = goals
            .iter()
            .map(|&name| {
                move |_worker: usize| {
                    let goal_start = Instant::now();
                    let outcome = self.prove_with_hints(name, hints);
                    GoalReport {
                        goal: name.to_string(),
                        outcome,
                        time: goal_start.elapsed(),
                    }
                }
            })
            .collect();
        let reports = scheduler.run(tasks);
        let mut stats = SearchStats::default();
        for r in &reports {
            if let Ok(v) = &r.outcome {
                stats.absorb(&v.result.stats);
            }
        }
        // Wall clock of the whole batch, not the sum of per-goal times:
        // with jobs > 1 the sum exceeds the wall clock by design.
        stats.elapsed = start.elapsed();
        Ok(BatchReport {
            goals: reports,
            stats,
            jobs: scheduler.jobs(),
            cache: self.shared_cache_stats(),
        })
    }
}

/// The outcome of one goal within a batch.
#[derive(Clone, Debug)]
pub struct GoalReport {
    /// The goal's name.
    pub goal: String,
    /// The verdict, or the per-goal error (e.g. a proof that failed
    /// re-checking).
    pub outcome: Result<Verdict, Error>,
    /// Wall-clock time this goal occupied its worker (parse excluded,
    /// search and re-check included).
    pub time: Duration,
}

impl GoalReport {
    /// The verdict, when the goal ran to a verdict.
    pub fn verdict(&self) -> Option<&Verdict> {
        self.outcome.as_ref().ok()
    }

    /// Whether the goal was proved (and, if enabled, re-checked).
    pub fn is_proved(&self) -> bool {
        self.verdict().is_some_and(Verdict::is_proved)
    }

    /// Whether the goal was refuted.
    pub fn is_refuted(&self) -> bool {
        self.verdict().is_some_and(Verdict::is_refuted)
    }
}

/// The outcome of [`Session::prove_all`]/[`Session::prove_many`]:
/// deterministic, declaration-ordered per-goal reports plus aggregates.
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// Per-goal reports, in the order the goals were requested (declaration
    /// order for [`Session::prove_all`]) — independent of completion order.
    pub goals: Vec<GoalReport>,
    /// Search counters summed over all goals. `elapsed` is the wall clock
    /// of the whole batch; the gauges (`closure_graphs`,
    /// `interned_nodes`) are summed across goals.
    pub stats: SearchStats,
    /// Worker threads used.
    pub jobs: usize,
    /// Shared normal-form cache counters at the end of the batch
    /// (session-lifetime totals, so earlier `prove` calls count too).
    pub cache: CacheStats,
}

impl BatchReport {
    /// Number of proved goals.
    pub fn proved(&self) -> usize {
        self.goals.iter().filter(|g| g.is_proved()).count()
    }

    /// Whether every goal in the batch was proved.
    pub fn all_proved(&self) -> bool {
        self.goals.iter().all(GoalReport::is_proved)
    }

    /// Whether any goal was refuted (a ground counterexample exists).
    pub fn any_refuted(&self) -> bool {
        self.goals.iter().any(GoalReport::is_refuted)
    }

    /// Whether any goal ended without a proof or refutation (exhausted,
    /// timeout, node budget, failed hint, or a per-goal error).
    pub fn any_gave_up(&self) -> bool {
        self.goals.iter().any(|g| !g.is_proved() && !g.is_refuted())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "data Nat = Z | S Nat
add :: Nat -> Nat -> Nat
add Z y = y
add (S x) y = S (add x y)
goal comm: add x y === add y x
goal zeroRight: add x Z === x
goal wrong: add x Z === Z
";

    #[test]
    fn session_proves_and_renders() {
        let s = Session::from_source(SRC).unwrap();
        let v = s.prove("comm").unwrap();
        assert!(v.is_proved());
        let text = v.render_proof().unwrap();
        assert!(text.contains("[Case"));
        let dot = v.render_dot().unwrap();
        assert!(dot.starts_with("digraph"));
    }

    #[test]
    fn session_refutes() {
        let s = Session::from_source(SRC).unwrap();
        let v = s.prove("wrong").unwrap();
        assert!(v.is_refuted());
        assert!(v.render_proof().is_err());
    }

    #[test]
    fn unknown_goals_error() {
        let s = Session::from_source(SRC).unwrap();
        assert!(matches!(s.prove("nope"), Err(Error::UnknownGoal(_))));
    }

    #[test]
    fn goal_names_in_order() {
        let s = Session::from_source(SRC).unwrap();
        assert_eq!(s.goal_names(), vec!["comm", "zeroRight", "wrong"]);
    }

    #[test]
    fn hints_are_imported_by_name() {
        let src = "data Nat = Z | S Nat
add :: Nat -> Nat -> Nat
add Z y = y
add (S x) y = S (add x y)
goal succRight: add x (S y) === S (add x y)
goal comm: add x y === add y x
";
        let s = Session::from_source(src).unwrap();
        let v = s.prove_with_hints("comm", &["succRight"]).unwrap();
        assert!(v.is_proved());
    }

    #[test]
    fn prove_all_reports_every_goal_in_declaration_order() {
        for jobs in [1, 4] {
            let s = Session::from_source(SRC).unwrap().with_jobs(jobs);
            let report = s.prove_all();
            assert_eq!(report.jobs, jobs);
            let names: Vec<&str> = report.goals.iter().map(|g| g.goal.as_str()).collect();
            assert_eq!(names, vec!["comm", "zeroRight", "wrong"]);
            assert!(report.goals[0].is_proved());
            assert!(report.goals[1].is_proved());
            assert!(report.goals[2].is_refuted());
            assert_eq!(report.proved(), 2);
            assert!(!report.all_proved());
            assert!(report.any_refuted());
            assert!(!report.any_gave_up());
            assert!(report.stats.nodes_created > 0);
        }
    }

    #[test]
    fn batch_shares_reductions_through_the_session_cache() {
        let s = Session::from_source(SRC).unwrap().with_jobs(2);
        let report = s.prove_all();
        assert!(
            report.stats.shared_cache_hits > 0,
            "goals over one program must share normal forms: {:?}",
            report.stats
        );
        assert!(report.cache.entries > 0);
        assert_eq!(report.cache.hits, report.stats.shared_cache_hits);
    }

    #[test]
    fn prove_many_validates_names_up_front() {
        let s = Session::from_source(SRC).unwrap();
        assert!(matches!(
            s.prove_many(&["comm", "nope"], &[]),
            Err(Error::UnknownGoal(n)) if n == "nope"
        ));
        assert!(matches!(
            s.prove_many(&["comm"], &["missingHint"]),
            Err(Error::UnknownGoal(_))
        ));
        let subset = s.prove_many(&["zeroRight"], &[]).unwrap();
        assert_eq!(subset.goals.len(), 1);
        assert!(subset.goals[0].is_proved());
    }

    #[test]
    fn jobs_zero_selects_hardware_parallelism() {
        let s = Session::from_source(SRC).unwrap().with_jobs(0);
        assert!(s.jobs() >= 1);
    }

    #[test]
    fn without_shared_cache_still_proves() {
        let s = Session::from_source(SRC).unwrap().without_shared_cache();
        let v = s.prove("comm").unwrap();
        assert!(v.is_proved());
        assert_eq!(s.shared_cache_stats(), CacheStats::default());
    }

    #[test]
    fn repeated_prove_calls_reuse_the_cache() {
        let s = Session::from_source(SRC).unwrap();
        let first = s.prove("comm").unwrap();
        let second = s.prove("comm").unwrap();
        assert!(second.result.stats.shared_cache_hits > 0);
        assert_eq!(
            first.is_proved(),
            second.is_proved(),
            "cache reuse must not change the verdict"
        );
    }

    #[test]
    fn parse_errors_surface() {
        assert!(matches!(
            Session::from_source("data = |"),
            Err(Error::Lang(_))
        ));
    }
}
