//! Size-change graphs and the global-correctness machinery of CycleQ (§5.2).
//!
//! The global condition on cyclic preproofs — every infinite path has a
//! suffix carrying a trace with infinitely many progress points — is
//! undecidable in general. CycleQ restricts attention to *variable-based*
//! traces, for which the condition reduces to Lee, Jones and Ben-Amram's
//! size-change principle: annotate every proof edge with a size-change graph
//! (Definition 5.3), close the set of graphs under composition
//! (Definition 5.4), and require every idempotent self-loop graph to carry a
//! strict self-edge (Theorem 5.2).
//!
//! This crate is independent of the term language: graphs are generic over
//! the variable type `V` and the node type `N`, so the same machinery
//! verifies proofs (variables = term variables, nodes = proof vertices) and
//! program termination (variables = argument positions, nodes = function
//! symbols).
//!
//! Two closure checkers share a single composition engine, the hash-consed
//! [`GraphStore`] (per-graph bit planes, cached Theorem 5.2 flags,
//! memoized composition, subsumption pruning — see [`store`] and the
//! exactness argument in [`incremental`]):
//!
//! - [`Closure`]: batch saturation from a fixed edge set, used by the
//!   stand-alone proof checker.
//! - [`IncrementalClosure`]: trail-based saturation that supports
//!   checkpoint/undo, used *during* proof search so that unsound cycles are
//!   detected the moment they are created and shared proof prefixes are
//!   never re-verified — the paper's answer to the soundness-checking
//!   bottleneck observed in Cyclist.
//!
//! [`ScGraph`] stays as the owned, construction-facing graph (and the
//! executable specification the property tests compare the store
//! against); it lowers into a store via [`GraphStore::intern`].

mod closure;
mod graph;
mod idvec;
pub mod incremental;
mod metrics;
pub mod store;

pub use closure::{Closure, Soundness};
pub use graph::{Label, ScGraph};
pub use incremental::{IncrementalClosure, Mark};
pub use store::{GraphId, GraphStore};

/// Convenience entry point: size-change termination of a call graph.
///
/// Each element of `edges` is `(source, target, graph)`. Returns `true` when
/// the multipath closure satisfies Theorem 5.2, i.e. every idempotent cyclic
/// composition has a strict self-edge.
///
/// # Example
///
/// ```
/// use cycleq_sizechange::{is_size_change_terminating, Label, ScGraph};
///
/// // A single recursive function whose first argument strictly decreases.
/// let mut g = ScGraph::new();
/// g.insert(0u32, 0u32, Label::Strict);
/// assert!(is_size_change_terminating(&[("f", "f", g.clone())]));
///
/// // A function that shuffles its arguments without decrease diverges.
/// let mut swap = ScGraph::new();
/// swap.insert(0u32, 1u32, Label::NonStrict);
/// swap.insert(1u32, 0u32, Label::NonStrict);
/// assert!(!is_size_change_terminating(&[("f", "f", swap)]));
/// ```
pub fn is_size_change_terminating<V, N>(edges: &[(N, N, ScGraph<V>)]) -> bool
where
    V: Copy + Ord + std::hash::Hash,
    N: Copy + Ord + std::hash::Hash,
{
    Closure::from_edges(edges.iter().cloned()).check() == Soundness::Sound
}
