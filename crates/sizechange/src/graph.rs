//! Size-change graphs (Definition 5.1) and their composition
//! (Definition 5.2).

use std::collections::BTreeMap;
use std::fmt;

/// An edge label: equality (`≃`) or a possible decrease (`≲`).
///
/// Labels form the two-point lattice with `Strict > NonStrict`
/// (Definition 5.1); composition joins labels, so a composite edge is
/// decreasing when either constituent is.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Label {
    /// `x ≃ y`: there is a trace from `x` to `y`.
    NonStrict,
    /// `x ≲ y`: there is a trace from `x` to `y` with a progress point.
    Strict,
}

impl Label {
    /// Lattice join: `Strict` dominates.
    pub fn join(self, other: Label) -> Label {
        self.max(other)
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Label::NonStrict => write!(f, "≃"),
            Label::Strict => write!(f, "≲"),
        }
    }
}

/// A size-change graph: a labelled bipartite graph between the variables of
/// a source node and those of a target node.
///
/// At most one edge is stored per variable pair, carrying the join of all
/// labels inserted for that pair — a strict edge subsumes a non-strict one,
/// since a trace with a progress point is in particular a trace.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct ScGraph<V> {
    edges: BTreeMap<(V, V), Label>,
}

impl<V: Copy + Ord> ScGraph<V> {
    /// The empty graph (no trace information).
    pub fn new() -> ScGraph<V> {
        ScGraph {
            edges: BTreeMap::new(),
        }
    }

    /// The identity graph `z ≃ z` on the given variables, used for rule
    /// edges that neither instantiate nor analyse variables
    /// (Definition 5.3, final case).
    pub fn identity(vars: impl IntoIterator<Item = V>) -> ScGraph<V> {
        let mut g = ScGraph::new();
        for v in vars {
            g.insert(v, v, Label::NonStrict);
        }
        g
    }

    /// Inserts an edge, joining with any existing label for the pair.
    pub fn insert(&mut self, from: V, to: V, label: Label) {
        self.edges
            .entry((from, to))
            .and_modify(|l| *l = l.join(label))
            .or_insert(label);
    }

    /// The label on `(from, to)`, if any.
    pub fn label(&self, from: V, to: V) -> Option<Label> {
        self.edges.get(&(from, to)).copied()
    }

    /// Iterates over edges as `(from, to, label)`.
    pub fn edges(&self) -> impl Iterator<Item = (V, V, Label)> + '_ {
        self.edges.iter().map(|(&(a, b), &l)| (a, b, l))
    }

    /// The number of edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the graph has no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Sequential composition: `self : u → v` followed by `other : v → w`
    /// gives `self.seq(other) : u → w`.
    ///
    /// In the paper's notation (Definition 5.2) this is `other ∘ self`. An
    /// edge `x → z` exists when there is `x → y` in `self` and `y → z` in
    /// `other`; its label is the join, so it is decreasing when either hop
    /// is.
    pub fn seq(&self, other: &ScGraph<V>) -> ScGraph<V> {
        let mut out = ScGraph::new();
        for (&(x, y), &l1) in &self.edges {
            for (&(y2, z), &l2) in &other.edges {
                if y == y2 {
                    out.insert(x, z, l1.join(l2));
                }
            }
        }
        out
    }

    /// Whether the graph has a strict self-edge `x ≲ x` (the Theorem 5.2
    /// requirement for idempotent cyclic graphs).
    pub fn has_strict_self_edge(&self) -> bool {
        self.edges
            .iter()
            .any(|(&(a, b), &l)| a == b && l == Label::Strict)
    }

    /// Whether the graph is idempotent: `self.seq(self) == self`.
    pub fn is_idempotent(&self) -> bool {
        &self.seq(self) == self
    }
}

impl<V: Copy + Ord + fmt::Display> fmt::Display for ScGraph<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (&(a, b), &l)) in self.edges.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a} {l} {b}")?;
        }
        write!(f, "}}")
    }
}

impl<V: Copy + Ord> FromIterator<(V, V, Label)> for ScGraph<V> {
    fn from_iter<I: IntoIterator<Item = (V, V, Label)>>(iter: I) -> ScGraph<V> {
        let mut g = ScGraph::new();
        for (a, b, l) in iter {
            g.insert(a, b, l);
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_joins_labels() {
        let mut g = ScGraph::new();
        g.insert(0u32, 1u32, Label::NonStrict);
        g.insert(0, 1, Label::Strict);
        assert_eq!(g.label(0, 1), Some(Label::Strict));
        g.insert(0, 1, Label::NonStrict);
        assert_eq!(
            g.label(0, 1),
            Some(Label::Strict),
            "strict must not be demoted"
        );
    }

    #[test]
    fn seq_composes_through_shared_variables() {
        let g: ScGraph<u32> = [(0, 1, Label::NonStrict)].into_iter().collect();
        let h: ScGraph<u32> = [(1, 2, Label::Strict)].into_iter().collect();
        let gh = g.seq(&h);
        assert_eq!(gh.label(0, 2), Some(Label::Strict));
        assert_eq!(gh.len(), 1);
    }

    #[test]
    fn seq_requires_matching_midpoint() {
        let g: ScGraph<u32> = [(0, 1, Label::Strict)].into_iter().collect();
        let h: ScGraph<u32> = [(2, 3, Label::Strict)].into_iter().collect();
        assert!(g.seq(&h).is_empty());
    }

    #[test]
    fn identity_is_neutral_for_seq() {
        let g: ScGraph<u32> = [(0, 1, Label::Strict), (1, 0, Label::NonStrict)]
            .into_iter()
            .collect();
        let id = ScGraph::identity(0..2u32);
        assert_eq!(g.seq(&id), g);
        assert_eq!(id.seq(&g), g);
    }

    #[test]
    fn seq_is_associative_on_samples() {
        let g: ScGraph<u32> = [(0, 1, Label::NonStrict), (1, 1, Label::Strict)]
            .into_iter()
            .collect();
        let h: ScGraph<u32> = [(1, 0, Label::NonStrict), (1, 1, Label::NonStrict)]
            .into_iter()
            .collect();
        let k: ScGraph<u32> = [(0, 0, Label::Strict), (0, 1, Label::NonStrict)]
            .into_iter()
            .collect();
        assert_eq!(g.seq(&h).seq(&k), g.seq(&h.seq(&k)));
    }

    #[test]
    fn strict_self_edge_detection() {
        let mut g = ScGraph::new();
        g.insert(3u32, 3u32, Label::NonStrict);
        assert!(!g.has_strict_self_edge());
        g.insert(3, 3, Label::Strict);
        assert!(g.has_strict_self_edge());
    }

    #[test]
    fn idempotence() {
        let id = ScGraph::identity(0..3u32);
        assert!(id.is_idempotent());
        let swap: ScGraph<u32> = [(0, 1, Label::NonStrict), (1, 0, Label::NonStrict)]
            .into_iter()
            .collect();
        assert!(!swap.is_idempotent());
        // swap² is the identity on {0,1}, which is idempotent.
        assert!(swap.seq(&swap).is_idempotent());
    }

    #[test]
    fn multiple_paths_keep_best_label() {
        // 0 → 1 and 0 → 2 both reach 3; one path is strict.
        let g: ScGraph<u32> = [(0, 1, Label::NonStrict), (0, 2, Label::Strict)]
            .into_iter()
            .collect();
        let h: ScGraph<u32> = [(1, 3, Label::NonStrict), (2, 3, Label::NonStrict)]
            .into_iter()
            .collect();
        assert_eq!(g.seq(&h).label(0, 3), Some(Label::Strict));
    }

    #[test]
    fn display_renders_edges() {
        let g: ScGraph<u32> = [(0, 1, Label::Strict)].into_iter().collect();
        assert_eq!(g.to_string(), "{0 ≲ 1}");
    }
}
