//! Incremental closure with checkpoint/undo, for verifying cycles *during*
//! proof search (§5.2).
//!
//! The key observations, from the paper:
//!
//! 1. Goal-directed proof search is incremental: candidate proofs share a
//!    common prefix, so re-verifying the whole proof after every extension
//!    (as Cyclist does with Büchi inclusion) recomputes the same
//!    information over and over.
//! 2. "As soon as a cycle that does not satisfy the global condition is
//!    detected, there is no advantage to completing the proof."
//!
//! [`IncrementalClosure`] maintains the composition closure as edges are
//! added, records every insertion on a trail so that backtracking can
//! restore any earlier state, and reports immediately when an idempotent
//! self-loop graph without a strict self-edge appears. Because closures only
//! ever grow along a search branch, such a graph can never be repaired by
//! adding more proof — the branch can be pruned on the spot.

use std::collections::{HashMap, HashSet};
use std::hash::Hash;

use crate::closure::Soundness;
use crate::graph::ScGraph;

/// A checkpoint into the trail of an [`IncrementalClosure`]; obtain with
/// [`IncrementalClosure::mark`] and restore with
/// [`IncrementalClosure::undo_to`].
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct Mark(usize);

/// The composition closure of a growing set of proof edges, with undo.
#[derive(Clone, Debug)]
pub struct IncrementalClosure<V, N> {
    graphs: HashMap<(N, N), HashSet<ScGraph<V>>>,
    /// Insertion log: (src, dst, graph, was_bad).
    trail: Vec<(N, N, ScGraph<V>, bool)>,
    /// Number of currently-present idempotent self-loops without a strict
    /// self-edge. Non-zero means the current preproof cannot satisfy the
    /// global condition.
    bad: usize,
}

impl<V, N> Default for IncrementalClosure<V, N> {
    fn default() -> Self {
        IncrementalClosure {
            graphs: HashMap::new(),
            trail: Vec::new(),
            bad: 0,
        }
    }
}

impl<V, N> IncrementalClosure<V, N>
where
    V: Copy + Ord + Hash,
    N: Copy + Ord + Hash,
{
    /// Creates an empty closure.
    pub fn new() -> IncrementalClosure<V, N> {
        IncrementalClosure::default()
    }

    /// A checkpoint capturing the current state.
    pub fn mark(&self) -> Mark {
        Mark(self.trail.len())
    }

    /// Adds a proof edge and saturates the closure with it.
    ///
    /// Returns [`Soundness::Unsound`] if the closure now contains an
    /// idempotent self-loop graph without a strict self-edge; the search
    /// should undo to the last checkpoint and try a different step. The
    /// closure remains internally consistent either way.
    pub fn add_edge(&mut self, src: N, dst: N, graph: ScGraph<V>) -> Soundness {
        let mut worklist: Vec<(N, N, ScGraph<V>)> = vec![(src, dst, graph)];
        while let Some((a, b, g)) = worklist.pop() {
            if self.graphs.get(&(a, b)).is_some_and(|set| set.contains(&g)) {
                continue;
            }
            let is_bad = a == b && g.is_idempotent() && !g.has_strict_self_edge();
            if is_bad {
                self.bad += 1;
            }
            self.graphs.entry((a, b)).or_default().insert(g.clone());
            self.trail.push((a, b, g.clone(), is_bad));
            for (&(c, d), set) in &self.graphs {
                if d == a {
                    for h in set {
                        worklist.push((c, b, h.seq(&g)));
                    }
                }
                if c == b {
                    for h in set {
                        worklist.push((a, d, g.seq(h)));
                    }
                }
            }
        }
        self.soundness()
    }

    /// The current verdict: sound unless some idempotent self-loop without a
    /// strict self-edge is present.
    pub fn soundness(&self) -> Soundness {
        if self.bad == 0 {
            Soundness::Sound
        } else {
            Soundness::Unsound
        }
    }

    /// Restores the state captured by `mark`, removing every graph inserted
    /// since.
    ///
    /// # Panics
    ///
    /// Panics if `mark` does not come from this closure's past (the trail is
    /// shorter than the mark).
    pub fn undo_to(&mut self, mark: Mark) {
        assert!(mark.0 <= self.trail.len(), "mark is in the future");
        while self.trail.len() > mark.0 {
            let (a, b, g, was_bad) = self.trail.pop().expect("trail non-empty");
            if was_bad {
                self.bad -= 1;
            }
            if let Some(set) = self.graphs.get_mut(&(a, b)) {
                set.remove(&g);
                if set.is_empty() {
                    self.graphs.remove(&(a, b));
                }
            }
        }
    }

    /// The total number of graphs currently in the closure.
    pub fn num_graphs(&self) -> usize {
        self.graphs.values().map(HashSet::len).sum()
    }

    /// The graphs currently recorded between `a` and `b`.
    pub fn between(&self, a: N, b: N) -> impl Iterator<Item = &ScGraph<V>> {
        self.graphs.get(&(a, b)).into_iter().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Label;

    #[test]
    fn strict_loop_is_sound() {
        let mut c = IncrementalClosure::new();
        let g: ScGraph<u32> = [(0, 0, Label::Strict)].into_iter().collect();
        assert_eq!(c.add_edge(0usize, 0usize, g), Soundness::Sound);
    }

    #[test]
    fn nonstrict_loop_is_detected_immediately() {
        let mut c = IncrementalClosure::new();
        let g: ScGraph<u32> = [(0, 0, Label::NonStrict)].into_iter().collect();
        assert_eq!(c.add_edge(0usize, 0usize, g), Soundness::Unsound);
    }

    #[test]
    fn undo_restores_soundness() {
        let mut c = IncrementalClosure::new();
        let mark = c.mark();
        let g: ScGraph<u32> = [(0, 0, Label::NonStrict)].into_iter().collect();
        assert_eq!(c.add_edge(0usize, 0usize, g), Soundness::Unsound);
        c.undo_to(mark);
        assert_eq!(c.soundness(), Soundness::Sound);
        assert_eq!(c.num_graphs(), 0);
    }

    #[test]
    fn incremental_matches_batch_on_multi_edge_cycle() {
        // Build the add-commutativity-style shape: two nodes, tree edge with
        // a strict hop, back edge with a renaming.
        let case_edge: ScGraph<u32> = [(0, 0, Label::Strict), (1, 1, Label::NonStrict)]
            .into_iter()
            .collect();
        let back_edge: ScGraph<u32> = [(0, 0, Label::NonStrict), (1, 1, Label::NonStrict)]
            .into_iter()
            .collect();

        let mut inc = IncrementalClosure::new();
        assert_eq!(
            inc.add_edge(0usize, 1usize, case_edge.clone()),
            Soundness::Sound
        );
        assert_eq!(
            inc.add_edge(1usize, 0usize, back_edge.clone()),
            Soundness::Sound
        );

        let batch =
            crate::Closure::from_edges([(0usize, 1usize, case_edge), (1usize, 0usize, back_edge)]);
        assert_eq!(batch.check(), Soundness::Sound);
        assert_eq!(inc.num_graphs(), batch.num_graphs());
    }

    #[test]
    fn incremental_detects_unsound_composite_cycle() {
        // Neither edge is a self-loop, but their composition is a loop with
        // no decrease.
        let fwd: ScGraph<u32> = [(0, 0, Label::NonStrict)].into_iter().collect();
        let back: ScGraph<u32> = [(0, 0, Label::NonStrict)].into_iter().collect();
        let mut inc = IncrementalClosure::new();
        assert_eq!(inc.add_edge(0usize, 1usize, fwd), Soundness::Sound);
        assert_eq!(inc.add_edge(1usize, 0usize, back), Soundness::Unsound);
    }

    #[test]
    fn nested_marks_unwind_in_order() {
        let mut c = IncrementalClosure::<u32, usize>::new();
        let g: ScGraph<u32> = [(0, 1, Label::NonStrict)].into_iter().collect();
        let m0 = c.mark();
        c.add_edge(0, 1, g.clone());
        let m1 = c.mark();
        c.add_edge(1, 2, g.clone());
        assert!(c.num_graphs() >= 2);
        c.undo_to(m1);
        assert_eq!(c.num_graphs(), 1);
        c.undo_to(m0);
        assert_eq!(c.num_graphs(), 0);
    }

    #[test]
    #[should_panic(expected = "mark is in the future")]
    fn future_marks_panic() {
        let mut c = IncrementalClosure::<u32, usize>::new();
        c.undo_to(Mark(5));
    }

    #[test]
    fn duplicate_edges_are_ignored() {
        let mut c = IncrementalClosure::new();
        let g: ScGraph<u32> = [(0, 0, Label::Strict)].into_iter().collect();
        c.add_edge(0usize, 0usize, g.clone());
        let n = c.num_graphs();
        c.add_edge(0usize, 0usize, g);
        assert_eq!(c.num_graphs(), n);
    }

    #[test]
    fn growth_only_monotone_unsound_stays_unsound() {
        let mut c = IncrementalClosure::new();
        let bad: ScGraph<u32> = ScGraph::new();
        assert_eq!(c.add_edge(0usize, 0usize, bad), Soundness::Unsound);
        let good: ScGraph<u32> = [(0, 0, Label::Strict)].into_iter().collect();
        // Adding a sound cycle elsewhere does not clear the verdict.
        assert_eq!(c.add_edge(1usize, 1usize, good), Soundness::Unsound);
    }
}
