//! Hash-consed size-change graphs: the [`GraphStore`] interner, a bit-plane
//! graph representation, and memoized composition.
//!
//! PR 2 fixed term explosion by interning terms once and memoising
//! reduction; this module applies the same cure to size-change graphs,
//! which profiling showed dominate the headline goals (163 graphs
//! materialised for ~34 interned proof nodes on `add_comm`). A graph is
//! interned once into a dense [`GraphId`]: equality becomes an id
//! comparison, the Theorem 5.2 ingredients (`has_strict_self_edge`,
//! `is_idempotent`) are computed once at intern time and cached on the
//! node, and composition is memoized in a `(GraphId, GraphId) → GraphId`
//! table whose cold path runs word-parallel OR over bit rows instead of
//! the old nested ordered-map loops.
//!
//! # Bit-plane layout
//!
//! Variables are assigned dense `u32` indices on first use, shared by every
//! graph in the store. A graph keeps its non-empty source rows (`srcs`,
//! sorted) and the sorted set of target variables with at least one
//! incoming edge (`cols`). Each row is `cols.len().div_ceil(64)` machine
//! words in two planes:
//!
//! - the **any** plane: bit `j` of row `i` is set when there is an edge
//!   `srcs[i] → cols[j]` of either label (`≃`-or-better);
//! - the **strict** plane: bit `j` is set when that edge is `≲`.
//!
//! The strict plane is bitwise contained in the any plane. Source-major
//! rows make composition `seq(a, b)` a scan of `a`'s set bits that ORs
//! whole rows of `b` into an accumulator; the label join needs no per-edge
//! branching because a strict hop in `a` simply promotes `b`'s any-row
//! into the strict accumulator.
//!
//! The representation is canonical — rows and columns without edges are
//! compacted away and both index lists are sorted — so structural equality
//! of the planes coincides with graph equality and the dedup table makes
//! interning idempotent. [`ScGraph`] remains the construction-facing API
//! (and the executable specification the property tests compare against);
//! it lowers into the store via [`GraphStore::intern`].

use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;

use crate::graph::{Label, ScGraph};

/// Identifier of a graph interned in a [`GraphStore`].
///
/// Ids are dense and store-scoped; two ids from the same store are equal
/// exactly when the graphs are equal.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct GraphId(pub(crate) u32);

impl GraphId {
    /// The position of the graph in its store's intern order.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Canonical bit-plane representation of one graph (see module docs).
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
struct GraphData {
    /// Sorted dense indices of source variables with at least one edge.
    srcs: Box<[u32]>,
    /// Sorted dense indices of target variables with at least one edge.
    cols: Box<[u32]>,
    /// `srcs.len() × words()` row-major `≃`-or-better plane.
    any: Box<[u64]>,
    /// Same layout; bitwise contained in `any`.
    strict: Box<[u64]>,
}

#[inline]
fn bit(words: &[u64], j: usize) -> bool {
    words[j / 64] >> (j % 64) & 1 == 1
}

#[inline]
fn set_bit(words: &mut [u64], j: usize) {
    words[j / 64] |= 1 << (j % 64);
}

/// Whether every set bit of `w_row`, remapped through `col_map`, is also
/// set in `g_row`. Bails out on the first missing bit.
fn row_contained(w_row: &[u64], col_map: &[usize], g_row: &[u64]) -> bool {
    for (wi, &word) in w_row.iter().enumerate() {
        let mut m = word;
        while m != 0 {
            let j = wi * 64 + m.trailing_zeros() as usize;
            if !bit(g_row, col_map[j]) {
                return false;
            }
            m &= m - 1;
        }
    }
    true
}

/// Calls `f` with the index of every set bit of `words`.
fn for_each_bit(words: &[u64], mut f: impl FnMut(usize)) {
    for (wi, &w) in words.iter().enumerate() {
        let mut m = w;
        while m != 0 {
            f(wi * 64 + m.trailing_zeros() as usize);
            m &= m - 1;
        }
    }
}

impl GraphData {
    fn words(&self) -> usize {
        self.cols.len().div_ceil(64)
    }

    fn row_any(&self, i: usize) -> &[u64] {
        let w = self.words();
        &self.any[i * w..(i + 1) * w]
    }

    fn row_strict(&self, i: usize) -> &[u64] {
        let w = self.words();
        &self.strict[i * w..(i + 1) * w]
    }

    fn is_empty(&self) -> bool {
        self.srcs.is_empty()
    }

    fn has_strict_self_edge(&self) -> bool {
        self.srcs.iter().enumerate().any(|(i, &s)| {
            self.cols
                .binary_search(&s)
                .is_ok_and(|k| bit(self.row_strict(i), k))
        })
    }
}

/// Sequential composition of the raw planes: `compose(a, b)` is
/// `a : u → v` followed by `b : v → w` (the paper's `b ∘ a`,
/// Definition 5.2). The output is canonical.
fn compose(a: &GraphData, b: &GraphData) -> GraphData {
    if a.is_empty() || b.is_empty() {
        return GraphData::default();
    }
    let bw = b.words();
    // Accumulate rows over b's column universe.
    let mut rows: Vec<(u32, Vec<u64>, Vec<u64>)> = Vec::with_capacity(a.srcs.len());
    for (i, &s) in a.srcs.iter().enumerate() {
        let mut acc_any = vec![0u64; bw];
        let mut acc_strict = vec![0u64; bw];
        let a_strict = a.row_strict(i);
        for_each_bit(a.row_any(i), |j| {
            let mid = a.cols[j];
            if let Ok(bi) = b.srcs.binary_search(&mid) {
                let b_any = b.row_any(bi);
                if bit(a_strict, j) {
                    // Strict hop: every continuation is strict.
                    for (w, &v) in b_any.iter().enumerate() {
                        acc_any[w] |= v;
                        acc_strict[w] |= v;
                    }
                } else {
                    let b_strict = b.row_strict(bi);
                    for (w, &v) in b_any.iter().enumerate() {
                        acc_any[w] |= v;
                        acc_strict[w] |= b_strict[w];
                    }
                }
            }
        });
        if acc_any.iter().any(|&w| w != 0) {
            rows.push((s, acc_any, acc_strict));
        }
    }
    if rows.is_empty() {
        return GraphData::default();
    }
    // Column-reduce to restore canonicity.
    let mut used = vec![0u64; bw];
    for (_, acc_any, _) in &rows {
        for (w, &v) in acc_any.iter().enumerate() {
            used[w] |= v;
        }
    }
    let mut col_map = vec![usize::MAX; b.cols.len()];
    let mut cols = Vec::new();
    for_each_bit(&used, |j| {
        col_map[j] = cols.len();
        cols.push(b.cols[j]);
    });
    let nw = cols.len().div_ceil(64);
    let mut srcs = Vec::with_capacity(rows.len());
    let mut any = vec![0u64; rows.len() * nw];
    let mut strict = vec![0u64; rows.len() * nw];
    for (i, (s, acc_any, acc_strict)) in rows.iter().enumerate() {
        srcs.push(*s);
        let row = &mut any[i * nw..(i + 1) * nw];
        for_each_bit(acc_any, |j| set_bit(row, col_map[j]));
        let row = &mut strict[i * nw..(i + 1) * nw];
        for_each_bit(acc_strict, |j| set_bit(row, col_map[j]));
    }
    GraphData {
        srcs: srcs.into_boxed_slice(),
        cols: cols.into_boxed_slice(),
        any: any.into_boxed_slice(),
        strict: strict.into_boxed_slice(),
    }
}

#[derive(Clone)]
struct GraphNode {
    data: GraphData,
    strict_self: bool,
    /// Lazily computed by [`GraphStore::force_idempotent`]; `None` until a
    /// caller actually needs the flag (only self-loop graphs ever do).
    idempotent: Option<bool>,
}

/// An interner for size-change graphs with cached Theorem 5.2 flags and
/// memoized composition. See the module docs for the representation.
#[derive(Clone)]
pub struct GraphStore<V> {
    /// Dense index → variable.
    vars: Vec<V>,
    /// Variable → dense index.
    var_ids: HashMap<V, u32>,
    nodes: Vec<GraphNode>,
    dedup: HashMap<GraphData, GraphId>,
    seq_memo: HashMap<(GraphId, GraphId), GraphId>,
    compositions: u64,
    memo_hits: u64,
}

impl<V> Default for GraphStore<V> {
    fn default() -> Self {
        GraphStore {
            vars: Vec::new(),
            var_ids: HashMap::new(),
            nodes: Vec::new(),
            dedup: HashMap::new(),
            seq_memo: HashMap::new(),
            compositions: 0,
            memo_hits: 0,
        }
    }
}

impl<V> fmt::Debug for GraphStore<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GraphStore")
            .field("graphs", &self.nodes.len())
            .field("vars", &self.vars.len())
            .field("compositions", &self.compositions)
            .field("memo_hits", &self.memo_hits)
            .finish()
    }
}

impl<V> GraphStore<V>
where
    V: Copy + Ord + Hash,
{
    /// Creates an empty store.
    pub fn new() -> GraphStore<V> {
        GraphStore::default()
    }

    fn var_index(&mut self, v: V) -> u32 {
        match self.var_ids.entry(v) {
            std::collections::hash_map::Entry::Occupied(e) => *e.get(),
            std::collections::hash_map::Entry::Vacant(e) => {
                let id = self.vars.len() as u32;
                self.vars.push(v);
                e.insert(id);
                id
            }
        }
    }

    /// Interns the graph given as labelled edges, joining duplicate labels
    /// for the same variable pair (a strict edge subsumes a non-strict
    /// one). This is the allocation-light path used to build edge graphs
    /// directly into the store.
    pub fn intern_edges<I>(&mut self, edges: I) -> GraphId
    where
        I: IntoIterator<Item = (V, V, Label)>,
    {
        let mut triples: Vec<(u32, u32, Label)> = edges
            .into_iter()
            .map(|(x, y, l)| (self.var_index(x), self.var_index(y), l))
            .collect();
        // Sort strict-first per pair so dedup keeps the label join.
        triples.sort_unstable_by_key(|&(x, y, l)| (x, y, std::cmp::Reverse(l)));
        triples.dedup_by_key(|&mut (x, y, _)| (x, y));
        self.intern_data(build_data(&triples))
    }

    /// Interns an owned [`ScGraph`].
    pub fn intern(&mut self, g: &ScGraph<V>) -> GraphId {
        self.intern_edges(g.edges())
    }

    fn intern_data(&mut self, data: GraphData) -> GraphId {
        if let Some(&id) = self.dedup.get(&data) {
            return id;
        }
        let strict_self = data.has_strict_self_edge();
        let id = GraphId(self.nodes.len() as u32);
        self.dedup.insert(data.clone(), id);
        self.nodes.push(GraphNode {
            data,
            strict_self,
            // Computed (and cached) on first demand: only graphs that land
            // on a self-loop pair ever need it, and eagerly self-composing
            // every cross-pair composite would double cold composition
            // work.
            idempotent: None,
        });
        id
    }

    /// Memoized sequential composition: `a : u → v` then `b : v → w`
    /// yields `u → w` (the paper's `b ∘ a`, Definition 5.2).
    pub fn seq(&mut self, a: GraphId, b: GraphId) -> GraphId {
        if let Some(&r) = self.seq_memo.get(&(a, b)) {
            self.memo_hits += 1;
            crate::metrics::store_metrics().memo_hits.inc();
            return r;
        }
        self.compositions += 1;
        crate::metrics::store_metrics().compositions.inc();
        let data = compose(&self.nodes[a.index()].data, &self.nodes[b.index()].data);
        let r = self.intern_data(data);
        self.seq_memo.insert((a, b), r);
        r
    }

    /// Whether `weak ⊑ strong`: every edge of `weak` is present in
    /// `strong` with an equal or stronger label (pointwise `≤` with
    /// `absent < ≃ < ≲`). This is the order under which composition is
    /// monotone; see the subsumption argument in
    /// [`crate::incremental`].
    pub fn subsumes(&self, weak: GraphId, strong: GraphId) -> bool {
        if weak == strong {
            return true;
        }
        let w = &self.nodes[weak.index()].data;
        let g = &self.nodes[strong.index()].data;
        if w.srcs.len() > g.srcs.len() || w.cols.len() > g.cols.len() {
            return false;
        }
        // Canonicity: every column of `w` carries an edge, so a column
        // missing from `g` refutes containment outright.
        let mut col_map = Vec::with_capacity(w.cols.len());
        for &c in w.cols.iter() {
            match g.cols.binary_search(&c) {
                Ok(k) => col_map.push(k),
                Err(_) => return false,
            }
        }
        let same_cols = w.cols == g.cols;
        for (i, &s) in w.srcs.iter().enumerate() {
            let Ok(gi) = g.srcs.binary_search(&s) else {
                return false;
            };
            let (w_any, w_strict) = (w.row_any(i), w.row_strict(i));
            let (g_any, g_strict) = (g.row_any(gi), g.row_strict(gi));
            if same_cols {
                // Word-parallel containment test.
                let any_ok = w_any.iter().zip(g_any).all(|(a, b)| a & !b == 0);
                let strict_ok = w_strict.iter().zip(g_strict).all(|(a, b)| a & !b == 0);
                if !any_ok || !strict_ok {
                    return false;
                }
            } else if !row_contained(w_any, &col_map, g_any)
                || !row_contained(w_strict, &col_map, g_strict)
            {
                return false;
            }
        }
        true
    }

    /// Whether the graph has a strict self-edge `x ≲ x` (cached at intern
    /// time).
    pub fn has_strict_self_edge(&self, id: GraphId) -> bool {
        self.nodes[id.index()].strict_self
    }

    /// Whether the graph is idempotent, `g.seq(g) == g`.
    ///
    /// Served from the cached flag when a `&mut` path
    /// ([`GraphStore::force_idempotent`], which the closure runs for every
    /// self-loop graph) has computed it; otherwise recomputed on the fly
    /// without caching — `compose` output is canonical, so the test is one
    /// self-composition plus a structural comparison.
    pub fn is_idempotent(&self, id: GraphId) -> bool {
        let n = &self.nodes[id.index()];
        n.idempotent.unwrap_or_else(|| {
            let d = &n.data;
            compose(d, d) == *d
        })
    }

    /// [`GraphStore::is_idempotent`], caching the flag on the node so
    /// every later query is O(1).
    pub fn force_idempotent(&mut self, id: GraphId) -> bool {
        let n = &self.nodes[id.index()];
        match n.idempotent {
            Some(v) => v,
            None => {
                let v = compose(&n.data, &n.data) == n.data;
                self.nodes[id.index()].idempotent = Some(v);
                v
            }
        }
    }

    /// The Theorem 5.2 violation test for a graph sitting on a self-loop:
    /// idempotent without a strict self-edge. Checks the cheap cached
    /// strict-self flag first, so idempotence is only computed (and
    /// cached) for graphs the flag does not already absolve.
    pub fn is_bad_self_loop(&mut self, id: GraphId) -> bool {
        !self.nodes[id.index()].strict_self && self.force_idempotent(id)
    }

    /// The edges of an interned graph as `(from, to, label)` triples.
    pub fn edges_of(&self, id: GraphId) -> Vec<(V, V, Label)> {
        let d = &self.nodes[id.index()].data;
        let mut out = Vec::new();
        for (i, &s) in d.srcs.iter().enumerate() {
            let from = self.vars[s as usize];
            let strict = d.row_strict(i);
            for_each_bit(d.row_any(i), |j| {
                let to = self.vars[d.cols[j] as usize];
                let label = if bit(strict, j) {
                    Label::Strict
                } else {
                    Label::NonStrict
                };
                out.push((from, to, label));
            });
        }
        out
    }

    /// Reconstructs the owned [`ScGraph`] for an id.
    pub fn resolve(&self, id: GraphId) -> ScGraph<V> {
        self.edges_of(id).into_iter().collect()
    }

    /// Number of distinct graphs interned.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether no graph has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Cold compositions performed (memo misses).
    pub fn compositions(&self) -> u64 {
        self.compositions
    }

    /// Compositions served from the memo table.
    pub fn memo_hits(&self) -> u64 {
        self.memo_hits
    }
}

/// Builds canonical planes from sorted, per-pair-unique dense triples.
fn build_data(triples: &[(u32, u32, Label)]) -> GraphData {
    if triples.is_empty() {
        return GraphData::default();
    }
    let mut srcs: Vec<u32> = triples.iter().map(|t| t.0).collect();
    srcs.dedup();
    let mut cols: Vec<u32> = triples.iter().map(|t| t.1).collect();
    cols.sort_unstable();
    cols.dedup();
    let nw = cols.len().div_ceil(64);
    let mut any = vec![0u64; srcs.len() * nw];
    let mut strict = vec![0u64; srcs.len() * nw];
    for &(x, y, l) in triples {
        let i = srcs.binary_search(&x).expect("source present");
        let k = cols.binary_search(&y).expect("column present");
        set_bit(&mut any[i * nw..(i + 1) * nw], k);
        if l == Label::Strict {
            set_bit(&mut strict[i * nw..(i + 1) * nw], k);
        }
    }
    GraphData {
        srcs: srcs.into_boxed_slice(),
        cols: cols.into_boxed_slice(),
        any: any.into_boxed_slice(),
        strict: strict.into_boxed_slice(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(edges: &[(u32, u32, Label)]) -> ScGraph<u32> {
        edges.iter().copied().collect()
    }

    #[test]
    fn interning_is_idempotent_and_structural() {
        let mut store = GraphStore::new();
        let a = store.intern(&graph(&[(0, 1, Label::Strict), (1, 1, Label::NonStrict)]));
        let b = store.intern(&graph(&[(1, 1, Label::NonStrict), (0, 1, Label::Strict)]));
        assert_eq!(a, b);
        assert_eq!(store.len(), 1);
        let c = store.intern(&graph(&[(0, 1, Label::NonStrict)]));
        assert_ne!(a, c);
    }

    #[test]
    fn duplicate_edges_join_labels() {
        let mut store = GraphStore::new();
        let a = store.intern_edges([
            (0u32, 1u32, Label::NonStrict),
            (0, 1, Label::Strict),
            (0, 1, Label::NonStrict),
        ]);
        assert_eq!(store.resolve(a).label(0, 1), Some(Label::Strict));
    }

    #[test]
    fn seq_matches_owned_composition() {
        let mut store = GraphStore::new();
        let g = graph(&[(0, 1, Label::NonStrict), (1, 1, Label::Strict)]);
        let h = graph(&[(1, 0, Label::NonStrict), (1, 1, Label::NonStrict)]);
        let (ig, ih) = (store.intern(&g), store.intern(&h));
        let composed = store.seq(ig, ih);
        assert_eq!(store.resolve(composed), g.seq(&h));
    }

    #[test]
    fn seq_is_memoized() {
        let mut store = GraphStore::new();
        let g = store.intern(&graph(&[(0, 0, Label::Strict)]));
        let h = store.intern(&graph(&[(0, 0, Label::NonStrict)]));
        let first = store.seq(g, h);
        let cold = store.compositions();
        let second = store.seq(g, h);
        assert_eq!(first, second);
        assert_eq!(store.compositions(), cold, "second call must hit the memo");
        assert_eq!(store.memo_hits(), 1);
    }

    #[test]
    fn flags_are_cached_correctly() {
        let mut store = GraphStore::new();
        let id = store.intern(&ScGraph::identity(0..3u32));
        assert!(store.is_idempotent(id));
        assert!(!store.has_strict_self_edge(id));
        assert!(store.is_bad_self_loop(id));
        let strict_loop = store.intern(&graph(&[(0, 0, Label::Strict)]));
        assert!(store.is_idempotent(strict_loop));
        assert!(store.has_strict_self_edge(strict_loop));
        assert!(!store.is_bad_self_loop(strict_loop));
        let swap = store.intern(&graph(&[
            (0, 1, Label::NonStrict),
            (1, 0, Label::NonStrict),
        ]));
        assert!(!store.is_idempotent(swap));
        let empty = store.intern(&ScGraph::new());
        assert!(store.is_bad_self_loop(empty));
    }

    #[test]
    fn subsumption_is_pointwise_label_order() {
        let mut store = GraphStore::new();
        let weak = store.intern(&graph(&[(0, 1, Label::NonStrict)]));
        let strong = store.intern(&graph(&[(0, 1, Label::Strict), (1, 2, Label::NonStrict)]));
        assert!(store.subsumes(weak, strong));
        assert!(!store.subsumes(strong, weak));
        let empty = store.intern(&ScGraph::new());
        assert!(store.subsumes(empty, weak));
        let other = store.intern(&graph(&[(2, 0, Label::NonStrict)]));
        assert!(!store.subsumes(other, strong));
        assert!(store.subsumes(weak, weak));
    }

    #[test]
    fn wide_graphs_cross_word_boundaries() {
        // 70 columns force two words per row.
        let mut store = GraphStore::new();
        let wide: ScGraph<u32> = (0..70u32)
            .map(|i| {
                (
                    0u32,
                    i,
                    if i % 2 == 0 {
                        Label::Strict
                    } else {
                        Label::NonStrict
                    },
                )
            })
            .collect();
        let back: ScGraph<u32> = (0..70u32).map(|i| (i, 0u32, Label::NonStrict)).collect();
        let (iw, ib) = (store.intern(&wide), store.intern(&back));
        let composed = store.seq(iw, ib);
        assert_eq!(store.resolve(composed), wide.seq(&back));
        assert!(store.has_strict_self_edge(composed));
    }
}
