//! Batch closure of a set of size-change graphs (Definition 5.4) and the
//! Theorem 5.2 soundness check.
//!
//! Since the graph store landed there is exactly **one** composition
//! engine: [`Closure`] is a thin wrapper that feeds its edges through an
//! [`IncrementalClosure`](crate::IncrementalClosure) (without ever using
//! the trail) and reads the verdict off the saturated state. The old
//! owned-graph saturation loop — `BTreeMap` compositions cloned into
//! `HashSet`s — is gone; both checkers share interning, cached flags,
//! memoized composition and cross-pair subsumption pruning (see
//! [`crate::incremental`] for why pruning preserves the verdict exactly).

use std::hash::Hash;

use crate::graph::ScGraph;
use crate::incremental::IncrementalClosure;
use crate::store::{GraphId, GraphStore};

/// Result of the Theorem 5.2 check.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Soundness {
    /// Every idempotent self-loop graph in the closure has a strict
    /// self-edge: the preproof is a proof.
    Sound,
    /// Some idempotent self-loop graph has no strict self-edge: the global
    /// condition fails.
    Unsound,
}

/// The closure of a set of annotated edges under composition
/// (Definition 5.4), computed by batch saturation.
///
/// `V` is the variable type labelling graph endpoints; `N` identifies the
/// nodes (proof vertices or program functions).
#[derive(Clone, Debug)]
pub struct Closure<V, N> {
    inner: IncrementalClosure<V, N>,
}

impl<V, N> Closure<V, N>
where
    V: Copy + Ord + Hash,
    N: Copy + Ord + Hash,
{
    /// Saturates the given edges under composition.
    ///
    /// Worst-case the closure is exponential in the number of variables per
    /// node (as in classical SCT), but proof graphs keep environments small
    /// and subsumption pruning discards dominated parallel graphs.
    pub fn from_edges(edges: impl IntoIterator<Item = (N, N, ScGraph<V>)>) -> Closure<V, N> {
        let mut inner = IncrementalClosure::new();
        for (a, b, g) in edges {
            inner.add_edge(a, b, g);
        }
        Closure { inner }
    }

    /// The graphs between `a` and `b` in the closure, resolved to owned
    /// [`ScGraph`]s.
    pub fn between(&self, a: N, b: N) -> impl Iterator<Item = ScGraph<V>> + '_ {
        self.inner.between(a, b)
    }

    /// The interned ids between `a` and `b` in the closure.
    pub fn between_ids(&self, a: N, b: N) -> impl Iterator<Item = GraphId> + '_ {
        self.inner.between_ids(a, b)
    }

    /// The graph store backing the closure.
    pub fn store(&self) -> &GraphStore<V> {
        self.inner.store()
    }

    /// The total number of graphs retained in the closure. O(1).
    pub fn num_graphs(&self) -> usize {
        self.inner.num_graphs()
    }

    /// Theorem 5.2: the annotated preproof is a proof iff every idempotent
    /// `G : v → v` in the closure has a strict self-edge. O(1) — violations
    /// are counted as graphs are inserted.
    pub fn check(&self) -> Soundness {
        self.inner.soundness()
    }

    /// Returns a witness of unsoundness: a node and an idempotent self-loop
    /// graph without a strict self-edge, if one exists.
    pub fn unsound_witness(&self) -> Option<(N, ScGraph<V>)> {
        self.inner.unsound_witness()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Label;

    fn strict_loop() -> ScGraph<u32> {
        [(0, 0, Label::Strict)].into_iter().collect()
    }

    #[test]
    fn single_strict_loop_is_sound() {
        let c = Closure::from_edges([(0usize, 0usize, strict_loop())]);
        assert_eq!(c.check(), Soundness::Sound);
    }

    #[test]
    fn single_nonstrict_loop_is_unsound() {
        let g: ScGraph<u32> = [(0, 0, Label::NonStrict)].into_iter().collect();
        let c = Closure::from_edges([(0usize, 0usize, g)]);
        assert_eq!(c.check(), Soundness::Unsound);
        assert!(c.unsound_witness().is_some());
    }

    #[test]
    fn empty_loop_graph_is_unsound() {
        // A cycle with no trace information at all: the empty graph is
        // idempotent and has no strict self-edge.
        let c = Closure::from_edges([(0usize, 0usize, ScGraph::<u32>::new())]);
        assert_eq!(c.check(), Soundness::Unsound);
    }

    #[test]
    fn two_edge_cycle_composes() {
        // 0 → 1 with x ≲ x, 1 → 0 with x ≃ x: the composite loop is strict.
        let g: ScGraph<u32> = [(0, 0, Label::Strict)].into_iter().collect();
        let h: ScGraph<u32> = [(0, 0, Label::NonStrict)].into_iter().collect();
        let c = Closure::from_edges([(0usize, 1usize, g), (1usize, 0usize, h)]);
        assert_eq!(c.check(), Soundness::Sound);
        assert!(c.between(0, 0).count() >= 1);
    }

    #[test]
    fn swap_cycle_without_decrease_is_unsound() {
        // The cycle permutes two variables with no decrease; its square is
        // the identity — idempotent with no strict edge.
        let swap: ScGraph<u32> = [(0, 1, Label::NonStrict), (1, 0, Label::NonStrict)]
            .into_iter()
            .collect();
        let c = Closure::from_edges([(0usize, 0usize, swap)]);
        assert_eq!(c.check(), Soundness::Unsound);
    }

    #[test]
    fn swap_cycle_with_decrease_is_sound() {
        // Permutation with a strict hop: every idempotent iterate carries a
        // strict self-edge (classic LJB example).
        let swap: ScGraph<u32> = [(0, 1, Label::Strict), (1, 0, Label::NonStrict)]
            .into_iter()
            .collect();
        let c = Closure::from_edges([(0usize, 0usize, swap)]);
        assert_eq!(c.check(), Soundness::Sound);
    }

    #[test]
    fn disconnected_acyclic_graphs_are_sound() {
        let g: ScGraph<u32> = [(0, 1, Label::NonStrict)].into_iter().collect();
        let c = Closure::from_edges([(0usize, 1usize, g)]);
        assert_eq!(c.check(), Soundness::Sound);
        assert_eq!(c.num_graphs(), 1);
    }

    #[test]
    fn closure_contains_all_path_compositions() {
        let ab: ScGraph<u32> = [(0, 0, Label::NonStrict)].into_iter().collect();
        let bc: ScGraph<u32> = [(0, 0, Label::Strict)].into_iter().collect();
        let c = Closure::from_edges([(0usize, 1usize, ab), (1usize, 2usize, bc)]);
        let through: Vec<_> = c.between(0, 2).collect();
        assert_eq!(through.len(), 1);
        assert_eq!(through[0].label(0, 0), Some(Label::Strict));
    }
}
