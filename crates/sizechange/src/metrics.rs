//! Process-wide registry handles for size-change closure activity.
//!
//! These aggregate across every [`crate::GraphStore`] in the process (each
//! prover owns its own store), unlike the per-goal `SearchStats` mirror
//! counters: the lint CQ004 pre-screen and certificate re-checks show up
//! here too.

use std::sync::OnceLock;

use cycleq_trace::{metrics, Counter};

#[derive(Debug, Clone)]
pub(crate) struct StoreMetrics {
    pub(crate) compositions: Counter,
    pub(crate) memo_hits: Counter,
    pub(crate) subsumed: Counter,
}

pub(crate) fn store_metrics() -> &'static StoreMetrics {
    static METRICS: OnceLock<StoreMetrics> = OnceLock::new();
    METRICS.get_or_init(|| StoreMetrics {
        compositions: metrics().counter(
            "cycleq_sizechange_compositions_total",
            "Cold size-change graph compositions (memo misses) across all graph stores.",
        ),
        memo_hits: metrics().counter(
            "cycleq_sizechange_memo_hits_total",
            "Size-change graph compositions served from store memo tables.",
        ),
        subsumed: metrics().counter(
            "cycleq_sizechange_subsumed_total",
            "Size-change graphs dropped by cross-pair subsumption pruning.",
        ),
    })
}
