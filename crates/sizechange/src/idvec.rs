//! A minimal inline small-vector for [`GraphId`]s.
//!
//! The closure keeps one id list per node pair; most pairs carry only a
//! handful of graphs, so the list lives inline until it outgrows
//! [`INLINE`] slots and only then spills to the heap. (The workspace is
//! built offline, so this stands in for the usual `smallvec` crate.)

use crate::store::GraphId;

/// Ids stored inline before spilling.
const INLINE: usize = 6;

/// An inline-first vector of [`GraphId`]s.
#[derive(Clone, Debug)]
pub(crate) enum SmallIdVec {
    Inline { len: u8, buf: [GraphId; INLINE] },
    Heap(Vec<GraphId>),
}

impl Default for SmallIdVec {
    fn default() -> Self {
        SmallIdVec::Inline {
            len: 0,
            buf: [GraphId(0); INLINE],
        }
    }
}

impl SmallIdVec {
    pub(crate) fn as_slice(&self) -> &[GraphId] {
        match self {
            SmallIdVec::Inline { len, buf } => &buf[..*len as usize],
            SmallIdVec::Heap(v) => v,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.as_slice().len()
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub(crate) fn contains(&self, id: GraphId) -> bool {
        self.as_slice().contains(&id)
    }

    pub(crate) fn iter(&self) -> std::slice::Iter<'_, GraphId> {
        self.as_slice().iter()
    }

    pub(crate) fn push(&mut self, id: GraphId) {
        match self {
            SmallIdVec::Inline { len, buf } => {
                if (*len as usize) < INLINE {
                    buf[*len as usize] = id;
                    *len += 1;
                } else {
                    let mut v = Vec::with_capacity(INLINE * 2);
                    v.extend_from_slice(&buf[..]);
                    v.push(id);
                    *self = SmallIdVec::Heap(v);
                }
            }
            SmallIdVec::Heap(v) => v.push(id),
        }
    }

    pub(crate) fn pop(&mut self) -> Option<GraphId> {
        match self {
            SmallIdVec::Inline { len, buf } => {
                if *len == 0 {
                    None
                } else {
                    *len -= 1;
                    Some(buf[*len as usize])
                }
            }
            SmallIdVec::Heap(v) => v.pop(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_across_the_spill_boundary() {
        let mut v = SmallIdVec::default();
        for i in 0..INLINE as u32 + 3 {
            v.push(GraphId(i));
        }
        assert_eq!(v.len(), INLINE + 3);
        assert!(matches!(v, SmallIdVec::Heap(_)));
        assert!(v.contains(GraphId(0)));
        assert!(v.contains(GraphId(INLINE as u32 + 2)));
        for i in (0..INLINE as u32 + 3).rev() {
            assert_eq!(v.pop(), Some(GraphId(i)));
        }
        assert_eq!(v.pop(), None);
        assert!(v.is_empty());
    }

    #[test]
    fn inline_stays_inline() {
        let mut v = SmallIdVec::default();
        for i in 0..INLINE as u32 {
            v.push(GraphId(i));
        }
        assert!(matches!(v, SmallIdVec::Inline { .. }));
        assert_eq!(v.iter().count(), INLINE);
    }
}
