//! Property tests for the size-change machinery: the interned engine must
//! agree with the owned [`ScGraph`] specification, subsumption pruning must
//! never change a verdict, and undo must be exact.

use cycleq_sizechange::{Closure, GraphStore, IncrementalClosure, Label, ScGraph, Soundness};
use proptest::prelude::*;
use proptest::test_runner::Config;

const NODES: usize = 4;
const VARS: u32 = 3;

fn arb_graph() -> impl Strategy<Value = ScGraph<u32>> {
    proptest::collection::vec(
        (
            0..VARS,
            0..VARS,
            prop_oneof![Just(Label::NonStrict), Just(Label::Strict)],
        ),
        0..6,
    )
    .prop_map(|edges| edges.into_iter().collect())
}

fn arb_edges() -> impl Strategy<Value = Vec<(usize, usize, ScGraph<u32>)>> {
    proptest::collection::vec((0..NODES, 0..NODES, arb_graph()), 1..6)
}

fn cfg() -> Config {
    Config {
        cases: 96,
        ..Config::default()
    }
}

/// An independent reference saturation over owned [`ScGraph`]s — the
/// pre-store worklist algorithm, kept here as the oracle so the interned
/// engine (which both `Closure` and `IncrementalClosure` now share) is
/// still checked against a second implementation.
fn reference_closure(edges: &[(usize, usize, ScGraph<u32>)]) -> (Soundness, usize) {
    use std::collections::{BTreeMap, HashSet};
    let mut graphs: BTreeMap<(usize, usize), HashSet<ScGraph<u32>>> = BTreeMap::new();
    let mut worklist: Vec<(usize, usize, ScGraph<u32>)> = edges.to_vec();
    while let Some((a, b, g)) = worklist.pop() {
        if !graphs.entry((a, b)).or_default().insert(g.clone()) {
            continue;
        }
        for (&(c, d), set) in &graphs {
            if d == a {
                for h in set {
                    worklist.push((c, b, h.seq(&g)));
                }
            }
            if c == b {
                for h in set {
                    worklist.push((a, d, g.seq(h)));
                }
            }
        }
    }
    let bad = graphs.iter().any(|(&(a, b), set)| {
        a == b
            && set
                .iter()
                .any(|g| g.is_idempotent() && !g.has_strict_self_edge())
    });
    let total = graphs.values().map(HashSet::len).sum();
    let verdict = if bad {
        Soundness::Unsound
    } else {
        Soundness::Sound
    };
    (verdict, total)
}

#[test]
fn incremental_agrees_with_batch() {
    proptest!(cfg(), |(edges in arb_edges())| {
        let batch = Closure::from_edges(edges.iter().cloned());
        let mut inc = IncrementalClosure::new();
        let mut verdict = Soundness::Sound;
        for (a, b, g) in &edges {
            verdict = inc.add_edge(*a, *b, g.clone());
        }
        prop_assert_eq!(verdict, batch.check());
        // `Closure` and `IncrementalClosure` share the interned engine, so
        // also check the verdict against the independent owned-graph
        // oracle; the unpruned engine must match its graph count exactly.
        let (ref_verdict, ref_count) = reference_closure(&edges);
        prop_assert_eq!(verdict, ref_verdict);
        let mut unpruned = IncrementalClosure::without_subsumption();
        for (a, b, g) in &edges {
            unpruned.add_edge(*a, *b, g.clone());
        }
        prop_assert_eq!(unpruned.soundness(), ref_verdict);
        prop_assert_eq!(unpruned.num_graphs(), ref_count);
        // Same retained state: both engines see the edges in the same
        // order, so pruning decisions coincide too.
        prop_assert_eq!(inc.num_graphs(), batch.num_graphs());
        for a in 0..NODES {
            for b in 0..NODES {
                let mut i: Vec<_> = inc.between(a, b).collect();
                let mut j: Vec<_> = batch.between(a, b).collect();
                i.sort_by_key(|g| format!("{g:?}"));
                j.sort_by_key(|g| format!("{g:?}"));
                prop_assert_eq!(i, j);
            }
        }
    });
}

/// The tentpole exactness property: cross-pair subsumption pruning keeps
/// the `Soundness` verdict identical to the unpruned closure after *every*
/// operation of a random add/undo sequence (see the proof sketch in
/// `cycleq_sizechange::incremental`).
#[test]
fn subsumption_preserves_verdict_at_every_step() {
    proptest!(cfg(), |(ops in proptest::collection::vec(
        (0..NODES, 0..NODES, arb_graph(), 0..256usize),
        1..12,
    ))| {
        let mut pruned = IncrementalClosure::new();
        let mut plain = IncrementalClosure::without_subsumption();
        let mut marks: Vec<_> = Vec::new();
        for (a, b, g, op) in ops {
            if op % 4 == 3 && !marks.is_empty() {
                let at = (op / 4) % marks.len();
                let (mp, mu) = marks[at];
                marks.truncate(at);
                pruned.undo_to(mp);
                plain.undo_to(mu);
            } else {
                marks.push((pruned.mark(), plain.mark()));
                let vp = pruned.add_edge(a, b, g.clone());
                let vu = plain.add_edge(a, b, g);
                prop_assert_eq!(vp, vu, "pruned and unpruned verdicts diverged");
            }
            prop_assert_eq!(pruned.soundness(), plain.soundness());
            prop_assert!(pruned.num_graphs() <= plain.num_graphs());
        }
    });
}

#[test]
fn undo_is_exact() {
    proptest!(cfg(), |(prefix in arb_edges(), suffix in arb_edges())| {
        let mut inc = IncrementalClosure::new();
        for (a, b, g) in &prefix {
            inc.add_edge(*a, *b, g.clone());
        }
        let snapshot_count = inc.num_graphs();
        let snapshot_sound = inc.soundness();
        let mark = inc.mark();
        for (a, b, g) in &suffix {
            inc.add_edge(*a, *b, g.clone());
        }
        inc.undo_to(mark);
        prop_assert_eq!(inc.num_graphs(), snapshot_count);
        prop_assert_eq!(inc.soundness(), snapshot_sound);
        // And the state still behaves like a fresh closure of the prefix.
        let batch = Closure::from_edges(prefix.iter().cloned());
        prop_assert_eq!(inc.num_graphs(), batch.num_graphs());
    });
}

#[test]
fn insertion_order_does_not_change_the_verdict() {
    // With subsumption the *retained set* is order-dependent (a weaker
    // graph arriving first prunes more), but the verdict never is.
    proptest!(cfg(), |(edges in arb_edges())| {
        let mut fwd = IncrementalClosure::new();
        for (a, b, g) in &edges {
            fwd.add_edge(*a, *b, g.clone());
        }
        let mut rev = IncrementalClosure::new();
        for (a, b, g) in edges.iter().rev() {
            rev.add_edge(*a, *b, g.clone());
        }
        prop_assert_eq!(fwd.soundness(), rev.soundness());
    });
}

#[test]
fn composition_is_associative() {
    proptest!(cfg(), |(g in arb_graph(), h in arb_graph(), k in arb_graph())| {
        prop_assert_eq!(g.seq(&h).seq(&k), g.seq(&h.seq(&k)));
    });
}

#[test]
fn identity_is_neutral() {
    proptest!(cfg(), |(g in arb_graph())| {
        let id = ScGraph::identity(0..VARS);
        prop_assert_eq!(g.seq(&id), g.clone());
        prop_assert_eq!(id.seq(&g), g);
    });
}

#[test]
fn strict_edges_dominate_in_composition() {
    proptest!(cfg(), |(g in arb_graph(), h in arb_graph())| {
        let gh = g.seq(&h);
        for (x, z, l) in gh.edges() {
            // If the composite edge is strict, some witness hop is strict.
            if l == Label::Strict {
                let witness = g.edges().any(|(a, b, l1)| {
                    a == x
                        && h.edges().any(|(b2, c, l2)| {
                            b2 == b && c == z && (l1 == Label::Strict || l2 == Label::Strict)
                        })
                });
                prop_assert!(witness, "strict composite without strict witness");
            }
        }
    });
}

#[test]
fn interned_seq_matches_owned_seq() {
    proptest!(cfg(), |(g in arb_graph(), h in arb_graph())| {
        let mut store = GraphStore::new();
        let (ig, ih) = (store.intern(&g), store.intern(&h));
        let composed = store.seq(ig, ih);
        prop_assert_eq!(store.resolve(composed), g.seq(&h));
    });
}

#[test]
fn intern_roundtrip_preserves_edges_and_flags() {
    proptest!(cfg(), |(g in arb_graph())| {
        let mut store = GraphStore::new();
        let id = store.intern(&g);
        prop_assert_eq!(store.resolve(id), g.clone());
        prop_assert_eq!(store.has_strict_self_edge(id), g.has_strict_self_edge());
        prop_assert_eq!(store.is_idempotent(id), g.is_idempotent());
        // Interning is hash-consing: the same graph maps to the same id.
        prop_assert_eq!(store.intern(&g), id);
    });
}

#[test]
fn subsumption_test_matches_pointwise_label_order() {
    proptest!(cfg(), |(w in arb_graph(), g in arb_graph())| {
        let expected = w.edges().all(|(x, y, l)| {
            g.label(x, y).is_some_and(|lg| lg >= l)
        });
        let mut store = GraphStore::new();
        let (iw, ig) = (store.intern(&w), store.intern(&g));
        prop_assert_eq!(store.subsumes(iw, ig), expected);
    });
}
