//! Property tests for the size-change machinery: the incremental closure
//! must agree with batch saturation on arbitrary edge sets, and undo must be
//! exact.

use cycleq_sizechange::{Closure, IncrementalClosure, Label, ScGraph, Soundness};
use proptest::prelude::*;
use proptest::test_runner::Config;

const NODES: usize = 4;
const VARS: u32 = 3;

fn arb_graph() -> impl Strategy<Value = ScGraph<u32>> {
    proptest::collection::vec(
        (
            0..VARS,
            0..VARS,
            prop_oneof![Just(Label::NonStrict), Just(Label::Strict)],
        ),
        0..6,
    )
    .prop_map(|edges| edges.into_iter().collect())
}

fn arb_edges() -> impl Strategy<Value = Vec<(usize, usize, ScGraph<u32>)>> {
    proptest::collection::vec((0..NODES, 0..NODES, arb_graph()), 1..6)
}

fn cfg() -> Config {
    Config {
        cases: 96,
        ..Config::default()
    }
}

#[test]
fn incremental_agrees_with_batch() {
    proptest!(cfg(), |(edges in arb_edges())| {
        let batch = Closure::from_edges(edges.iter().cloned());
        let mut inc = IncrementalClosure::new();
        let mut verdict = Soundness::Sound;
        for (a, b, g) in &edges {
            verdict = inc.add_edge(*a, *b, g.clone());
        }
        prop_assert_eq!(verdict, batch.check());
        prop_assert_eq!(inc.num_graphs(), batch.num_graphs());
        // Same graphs per pair.
        for a in 0..NODES {
            for b in 0..NODES {
                let mut i: Vec<_> = inc.between(a, b).cloned().collect();
                let mut j: Vec<_> = batch.between(a, b).cloned().collect();
                i.sort_by_key(|g| format!("{g:?}"));
                j.sort_by_key(|g| format!("{g:?}"));
                prop_assert_eq!(i, j);
            }
        }
    });
}

#[test]
fn undo_is_exact() {
    proptest!(cfg(), |(prefix in arb_edges(), suffix in arb_edges())| {
        let mut inc = IncrementalClosure::new();
        for (a, b, g) in &prefix {
            inc.add_edge(*a, *b, g.clone());
        }
        let snapshot_count = inc.num_graphs();
        let snapshot_sound = inc.soundness();
        let mark = inc.mark();
        for (a, b, g) in &suffix {
            inc.add_edge(*a, *b, g.clone());
        }
        inc.undo_to(mark);
        prop_assert_eq!(inc.num_graphs(), snapshot_count);
        prop_assert_eq!(inc.soundness(), snapshot_sound);
        // And the state still behaves like a fresh closure of the prefix.
        let batch = Closure::from_edges(prefix.iter().cloned());
        prop_assert_eq!(inc.num_graphs(), batch.num_graphs());
    });
}

#[test]
fn insertion_order_is_irrelevant() {
    proptest!(cfg(), |(edges in arb_edges())| {
        let mut fwd = IncrementalClosure::new();
        for (a, b, g) in &edges {
            fwd.add_edge(*a, *b, g.clone());
        }
        let mut rev = IncrementalClosure::new();
        for (a, b, g) in edges.iter().rev() {
            rev.add_edge(*a, *b, g.clone());
        }
        prop_assert_eq!(fwd.num_graphs(), rev.num_graphs());
        prop_assert_eq!(fwd.soundness(), rev.soundness());
    });
}

#[test]
fn composition_is_associative() {
    proptest!(cfg(), |(g in arb_graph(), h in arb_graph(), k in arb_graph())| {
        prop_assert_eq!(g.seq(&h).seq(&k), g.seq(&h.seq(&k)));
    });
}

#[test]
fn identity_is_neutral() {
    proptest!(cfg(), |(g in arb_graph())| {
        let id = ScGraph::identity(0..VARS);
        prop_assert_eq!(g.seq(&id), g.clone());
        prop_assert_eq!(id.seq(&g), g);
    });
}

#[test]
fn strict_edges_dominate_in_composition() {
    proptest!(cfg(), |(g in arb_graph(), h in arb_graph())| {
        let gh = g.seq(&h);
        for (x, z, l) in gh.edges() {
            // If the composite edge is strict, some witness hop is strict.
            if l == Label::Strict {
                let witness = g.edges().any(|(a, b, l1)| {
                    a == x
                        && h.edges().any(|(b2, c, l2)| {
                            b2 == b && c == z && (l1 == Label::Strict || l2 == Label::Strict)
                        })
                });
                prop_assert!(witness, "strict composite without strict witness");
            }
        }
    });
}
