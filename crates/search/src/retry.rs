//! Budget-escalation retry for failed proof attempts.
//!
//! A [`RetryPolicy`] decides whether a finished attempt should be re-run
//! and with how much more room. Only *resource* failures are retryable:
//! [`Outcome::Timeout`] and [`Outcome::NodeBudget`] (the search ran out of
//! ceiling, more might succeed) and [`Outcome::Panicked`] (the fault
//! boundary isolated a crash; a re-run on a clean search state may well
//! succeed, and deterministic fault plans consume their occurrence
//! counters, so an injected fault does not re-fire). Semantic verdicts —
//! proved, refuted, exhausted, cancelled, failed hint — are final and never
//! retried.

use std::time::Duration;

use crate::budget::Budget;
use crate::config::SearchConfig;
use crate::prover::Outcome;

/// How many times to attempt a goal and how much to grow its budget each
/// time. The default policy performs no retries.
///
/// Escalation multiplies *both* limit sources by `escalation^(attempt-1)`:
/// the external [`Budget`] and the limit-carrying fields of the
/// [`SearchConfig`] (timeout, max nodes, reduction fuel). The effective
/// limit of a run is the tighter of the two, so escalating only one would
/// be a no-op whenever the other is binding.
///
/// ```
/// use cycleq_search::{Outcome, RetryPolicy};
///
/// let policy = RetryPolicy::new(3).with_escalation(4.0);
/// assert!(policy.should_retry(&Outcome::Timeout, 1));
/// assert!(policy.should_retry(&Outcome::Timeout, 2));
/// assert!(!policy.should_retry(&Outcome::Timeout, 3)); // attempts spent
/// assert!(!policy.should_retry(&Outcome::Refuted, 1)); // final verdict
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts allowed per goal (1 = no retries).
    pub max_attempts: u32,
    /// Budget growth factor per retry (≥ 1.0).
    pub escalation: f64,
    /// Optional pause before each retry (a crash loop breaker for
    /// long-lived services; tests leave it `None`).
    pub backoff: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy::none()
    }
}

impl RetryPolicy {
    /// No retries: every goal gets exactly one attempt.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            escalation: 2.0,
            backoff: None,
        }
    }

    /// A policy allowing `max_attempts` total attempts (floored at 1) with
    /// the default 2× budget escalation per retry.
    pub fn new(max_attempts: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            ..RetryPolicy::none()
        }
    }

    /// Sets the per-retry budget growth factor (floored at 1.0).
    #[must_use]
    pub fn with_escalation(mut self, escalation: f64) -> RetryPolicy {
        self.escalation = if escalation.is_finite() {
            escalation.max(1.0)
        } else {
            1.0
        };
        self
    }

    /// Sets a pause before each retry.
    #[must_use]
    pub fn with_backoff(mut self, backoff: Duration) -> RetryPolicy {
        self.backoff = Some(backoff);
        self
    }

    /// Whether `outcome` is a resource failure this policy would re-run
    /// after `attempt` completed attempts.
    pub fn should_retry(&self, outcome: &Outcome, attempt: u32) -> bool {
        attempt < self.max_attempts
            && matches!(
                outcome,
                Outcome::Timeout | Outcome::NodeBudget | Outcome::Panicked { .. }
            )
    }

    /// The escalation factor applied to attempt number `attempt` (1-based):
    /// `escalation^(attempt-1)`.
    fn factor(&self, attempt: u32) -> f64 {
        self.escalation
            .powi(i32::try_from(attempt.saturating_sub(1)).unwrap_or(i32::MAX))
    }

    /// `budget` scaled up for the given attempt (attempt 1 is unchanged).
    pub fn escalate_budget(&self, budget: &Budget, attempt: u32) -> Budget {
        let f = self.factor(attempt);
        Budget {
            timeout: budget.timeout.map(|t| scale_duration(t, f)),
            max_nodes: budget.max_nodes.map(|n| scale_count(n, f)),
            fuel: budget.fuel.map(|n| scale_count(n, f)),
        }
    }

    /// `config` with its limit fields scaled up for the given attempt
    /// (search *strategy* fields — depths, lemma policy — are untouched).
    pub fn escalate_config(&self, config: &SearchConfig, attempt: u32) -> SearchConfig {
        let f = self.factor(attempt);
        SearchConfig {
            timeout: config.timeout.map(|t| scale_duration(t, f)),
            max_nodes: scale_count(config.max_nodes, f),
            reduction_fuel: scale_count(config.reduction_fuel, f),
            ..config.clone()
        }
    }
}

fn scale_duration(d: Duration, factor: f64) -> Duration {
    let secs = d.as_secs_f64() * factor;
    if secs.is_finite() && (0.0..1e15).contains(&secs) {
        Duration::from_secs_f64(secs)
    } else {
        Duration::MAX
    }
}

#[allow(
    clippy::cast_precision_loss,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss
)]
fn scale_count(n: usize, factor: f64) -> usize {
    let scaled = (n as f64) * factor;
    if scaled >= usize::MAX as f64 {
        usize::MAX
    } else {
        scaled as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_never_retries() {
        let p = RetryPolicy::none();
        assert!(!p.should_retry(&Outcome::Timeout, 1));
        assert!(!p.should_retry(
            &Outcome::Panicked {
                message: "boom".into()
            },
            1
        ));
    }

    #[test]
    fn only_resource_failures_are_retryable() {
        let p = RetryPolicy::new(2);
        assert!(p.should_retry(&Outcome::Timeout, 1));
        assert!(p.should_retry(&Outcome::NodeBudget, 1));
        assert!(p.should_retry(
            &Outcome::Panicked {
                message: "boom".into()
            },
            1
        ));
        for final_outcome in [Outcome::Refuted, Outcome::Exhausted, Outcome::Cancelled] {
            assert!(!p.should_retry(&final_outcome, 1), "{final_outcome:?}");
        }
        assert!(!p.should_retry(&Outcome::HintFailed { index: 0 }, 1));
        // Attempts spent.
        assert!(!p.should_retry(&Outcome::Timeout, 2));
    }

    #[test]
    fn escalation_compounds_per_attempt() {
        let p = RetryPolicy::new(3).with_escalation(2.0);
        let b = Budget::unlimited()
            .with_timeout(Duration::from_millis(100))
            .with_max_nodes(1_000)
            .with_fuel(50);
        let a1 = p.escalate_budget(&b, 1);
        assert_eq!(a1, b, "first attempt runs on the base budget");
        let a3 = p.escalate_budget(&b, 3);
        assert_eq!(a3.timeout, Some(Duration::from_millis(400)));
        assert_eq!(a3.max_nodes, Some(4_000));
        assert_eq!(a3.fuel, Some(200));
    }

    #[test]
    fn config_limits_escalate_but_strategy_does_not() {
        let p = RetryPolicy::new(2).with_escalation(3.0);
        let c = SearchConfig::default();
        let e = p.escalate_config(&c, 2);
        assert_eq!(e.max_nodes, c.max_nodes * 3);
        assert_eq!(e.reduction_fuel, c.reduction_fuel * 3);
        assert_eq!(e.timeout, c.timeout.map(|t| t * 3));
        assert_eq!(e.initial_depth, c.initial_depth);
        assert_eq!(e.max_depth, c.max_depth);
        assert_eq!(e.lemma_policy, c.lemma_policy);
    }

    #[test]
    fn pathological_factors_are_clamped() {
        let p = RetryPolicy::new(2).with_escalation(f64::INFINITY);
        assert_eq!(p.escalation, 1.0);
        let p = RetryPolicy::new(2).with_escalation(0.25);
        assert_eq!(p.escalation, 1.0, "escalation never shrinks budgets");
        assert_eq!(RetryPolicy::new(0).max_attempts, 1);
        let huge = RetryPolicy {
            max_attempts: 10,
            escalation: 1e300,
            backoff: None,
        };
        let b = Budget::unlimited()
            .with_timeout(Duration::from_secs(1))
            .with_max_nodes(10);
        let e = huge.escalate_budget(&b, 10);
        assert_eq!(e.max_nodes, Some(usize::MAX));
        assert_eq!(e.timeout, Some(Duration::MAX));
    }
}
