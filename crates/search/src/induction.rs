//! Classical one-variable structural induction, translated into the cyclic
//! calculus (Appendix C, Example C.1, Figs. 8–9).
//!
//! A traditional proof by structural induction on `x` maps mechanically
//! onto a cyclic proof: `(Case)` on `x` at the root, and each use of the
//! induction hypothesis becomes `(Subst)` with the *root* as the lemma,
//! instantiated by `x ↦ y` for a recursive constructor argument `y`. The
//! resulting cycle has an obvious variable trace (`x, y, x, …`), so the
//! global condition holds by construction — but we still run the
//! size-change check.
//!
//! The point of carrying this translation as a separate, deliberately
//! *restricted* tactic is the paper's motivation in reverse: everything
//! this tactic proves, the full cyclic search proves too, but not vice
//! versa. In particular it fails on the mutual-induction examples of §1,
//! because a fixed scheme over one datatype cannot use the companion
//! lemma about the other — whereas the unrestricted `(Subst)` rule can.

use cycleq_proof::{CaseBranch, NodeId, Preproof, RuleApp, Side, SubstApp};
use cycleq_rewrite::{Program, Rewriter};
use cycleq_term::{match_term, Equation, Subst, Term, VarId, VarStore};

/// Why structural induction failed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum InductionError {
    /// The chosen variable is not of datatype type.
    NotADatatype,
    /// A branch goal could not be discharged by reduction, congruence and
    /// induction-hypothesis rewriting alone.
    BranchStuck {
        /// The constructor of the stuck branch.
        constructor: String,
    },
    /// Reduction ran out of fuel.
    Diverged,
}

/// Proves `goal` by structural induction on `var`, returning the cyclic
/// proof and its root.
///
/// The discharge procedure per branch is deliberately weak — normalise,
/// decompose constructors, rewrite with the induction hypothesis
/// (instances `x ↦ y` for the branch's recursive arguments `y`), repeat —
/// mirroring the mechanical translation of Fig. 8 into Fig. 9.
///
/// # Errors
///
/// Returns [`InductionError`] when the fixed scheme does not suffice; the
/// full cyclic search may still succeed.
pub fn structural_induction(
    prog: &Program,
    goal: Equation,
    vars: VarStore,
    var: VarId,
) -> Result<(Preproof, NodeId), InductionError> {
    let mut proof = Preproof::with_vars(vars);
    let vty = proof.vars().ty(var).clone();
    let Some((data, ty_args)) = vty.as_data() else {
        return Err(InductionError::NotADatatype);
    };
    let ty_args = ty_args.to_vec();
    let root = proof.push_open(goal.clone());

    let cons: Vec<_> = prog.sig.constructors_of(data).to_vec();
    let mut branches = Vec::with_capacity(cons.len());
    let mut premises = Vec::with_capacity(cons.len());
    let mut recursive_args: Vec<Vec<VarId>> = Vec::with_capacity(cons.len());
    for &k in &cons {
        let inst = prog
            .sig
            .sym(k)
            .scheme()
            .instantiate_with(&ty_args)
            .expect("constructor scheme arity matches datatype");
        let (arg_tys, _) = inst.uncurry();
        let base = proof.vars().name(var).to_string();
        let mut fresh = Vec::with_capacity(arg_tys.len());
        let mut rec = Vec::new();
        for (i, t) in arg_tys.iter().enumerate() {
            let name = if arg_tys.len() == 1 {
                format!("{base}'")
            } else {
                format!("{base}'{}", i + 1)
            };
            let v = proof.vars_mut().fresh(&name, (*t).clone());
            if **t == vty {
                rec.push(v);
            }
            fresh.push(v);
        }
        let pattern = Term::apps(k, fresh.iter().map(|w| Term::var(*w)).collect());
        let branch_eq = goal.subst(&Subst::singleton(var, pattern));
        premises.push(proof.push_open(branch_eq));
        branches.push(CaseBranch { con: k, fresh });
        recursive_args.push(rec);
    }
    proof.justify(root, RuleApp::Case { var, branches }, premises.clone());

    for ((premise, rec), &k) in premises.into_iter().zip(recursive_args).zip(&cons) {
        discharge(prog, &mut proof, premise, root, &goal, var, &rec).map_err(|e| match e {
            DischargeFail::Stuck => InductionError::BranchStuck {
                constructor: prog.sig.sym(k).name().to_string(),
            },
            DischargeFail::Diverged => InductionError::Diverged,
        })?;
    }
    Ok((proof, root))
}

enum DischargeFail {
    Stuck,
    Diverged,
}

/// Discharges one subgoal with reduce / refl / cong / IH-rewriting.
fn discharge(
    prog: &Program,
    proof: &mut Preproof,
    node: NodeId,
    root: NodeId,
    goal: &Equation,
    var: VarId,
    recursive: &[VarId],
) -> Result<(), DischargeFail> {
    let rw = Rewriter::new(&prog.sig, &prog.trs);
    let eq = proof.node(node).eq.clone();
    // Reduce.
    let ln = rw.normalize(eq.lhs());
    let rn = rw.normalize(eq.rhs());
    if !ln.in_normal_form || !rn.in_normal_form {
        return Err(DischargeFail::Diverged);
    }
    if &ln.term != eq.lhs() || &rn.term != eq.rhs() {
        let child = proof.push_open(Equation::new(ln.term, rn.term));
        proof.justify(node, RuleApp::Reduce, vec![child]);
        return discharge(prog, proof, child, root, goal, var, recursive);
    }
    // Refl.
    if eq.is_trivial() {
        proof.justify(node, RuleApp::Refl, vec![]);
        return Ok(());
    }
    // Cong.
    if let (Some((k1, _)), Some((k2, _))) = (
        eq.lhs().as_constructor(&prog.sig),
        eq.rhs().as_constructor(&prog.sig),
    ) {
        if k1 == k2 {
            let n = eq.lhs().args().len();
            let mut premises = Vec::with_capacity(n);
            for i in 0..n {
                premises.push(proof.push_open(Equation::new(
                    eq.lhs().args()[i].clone(),
                    eq.rhs().args()[i].clone(),
                )));
            }
            proof.justify(node, RuleApp::Cong, premises.clone());
            for p in premises {
                discharge(prog, proof, p, root, goal, var, recursive)?;
            }
            return Ok(());
        }
    }
    // Induction hypothesis: rewrite an occurrence of goal[y/x] (either
    // side) using the root as lemma.
    for &y in recursive {
        let ih = Subst::singleton(var, Term::var(y));
        for (flipped, from_raw, to_raw) in [
            (false, goal.lhs(), goal.rhs()),
            (true, goal.rhs(), goal.lhs()),
        ] {
            let from = ih.apply(from_raw);
            if from.as_var().is_some() || from.head_sym().is_none() {
                continue;
            }
            let to = ih.apply(to_raw);
            if !to.vars().is_subset(&from.vars()) {
                continue;
            }
            for side in [Side::Lhs, Side::Rhs] {
                let side_term = side.of(&eq).clone();
                for (pos, sub) in side_term.positions() {
                    if sub.as_var().is_some() {
                        continue;
                    }
                    let Some(extra) = match_term(&from, sub) else {
                        continue;
                    };
                    // Full instantiation of the root: x ↦ y, then whatever
                    // the occurrence demands for the remaining variables.
                    let mut theta = ih.then(&extra);
                    // `then` also copies `extra`'s bindings; restrict to
                    // the root equation's variables.
                    theta = theta.restricted_to(goal.vars());
                    let replacement = extra.apply(&to);
                    if &replacement == sub {
                        continue;
                    }
                    let rewritten = side_term
                        .replace_at(&pos, replacement)
                        .expect("valid position");
                    let cont_eq = match side {
                        Side::Lhs => Equation::new(rewritten, eq.rhs().clone()),
                        Side::Rhs => Equation::new(eq.lhs().clone(), rewritten),
                    };
                    let cont = proof.push_open(cont_eq);
                    proof.justify(
                        node,
                        RuleApp::Subst(SubstApp {
                            side,
                            pos,
                            theta,
                            lemma_flipped: flipped,
                        }),
                        vec![root, cont],
                    );
                    return discharge(prog, proof, cont, root, goal, var, recursive);
                }
            }
        }
    }
    Err(DischargeFail::Stuck)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cycleq_proof::{check, GlobalCheck};
    use cycleq_rewrite::fixtures::nat_list_program;

    #[test]
    fn fig9_map_id_by_structural_induction() {
        // Example C.1: map id xs ≈ xs by induction on xs, using the fixture
        // `map` and an identity built from add Z (id is not in the
        // fixture): instead we prove add x Z ≈ x, the canonical Nat case.
        let p = nat_list_program();
        let mut vars = VarStore::new();
        let x = vars.fresh("x", p.f.nat_ty());
        let goal = Equation::new(
            Term::apps(p.f.add, vec![Term::var(x), Term::sym(p.f.zero)]),
            Term::var(x),
        );
        let (proof, _root) = structural_induction(&p.prog, goal, vars, x).unwrap();
        let report = check(&proof, &p.prog, GlobalCheck::VariableTraces).unwrap();
        assert!(report.back_edges >= 1, "the IH forms a cycle");
    }

    #[test]
    fn append_nil_by_induction_on_xs() {
        let p = nat_list_program();
        let mut vars = VarStore::new();
        let xs = vars.fresh("xs", p.f.list_ty(p.f.nat_ty()));
        let goal = Equation::new(
            Term::apps(p.f.app, vec![Term::var(xs), Term::sym(p.f.nil)]),
            Term::var(xs),
        );
        let (proof, _) = structural_induction(&p.prog, goal, vars, xs).unwrap();
        check(&proof, &p.prog, GlobalCheck::VariableTraces).unwrap();
    }

    #[test]
    fn associativity_by_induction_on_first_variable() {
        let p = nat_list_program();
        let mut vars = VarStore::new();
        let x = vars.fresh("x", p.f.nat_ty());
        let y = vars.fresh("y", p.f.nat_ty());
        let z = vars.fresh("z", p.f.nat_ty());
        let goal = Equation::new(
            Term::apps(
                p.f.add,
                vec![
                    Term::apps(p.f.add, vec![Term::var(x), Term::var(y)]),
                    Term::var(z),
                ],
            ),
            Term::apps(
                p.f.add,
                vec![
                    Term::var(x),
                    Term::apps(p.f.add, vec![Term::var(y), Term::var(z)]),
                ],
            ),
        );
        let (proof, _) = structural_induction(&p.prog, goal, vars, x).unwrap();
        check(&proof, &p.prog, GlobalCheck::VariableTraces).unwrap();
    }

    #[test]
    fn commutativity_defeats_plain_structural_induction() {
        // The fixed scheme cannot prove add x y ≈ add y x: the Z branch
        // leaves y ≈ add y Z, which needs a *nested* induction — the cyclic
        // search finds it (Fig. 4), the one-variable scheme does not.
        let p = nat_list_program();
        let mut vars = VarStore::new();
        let x = vars.fresh("x", p.f.nat_ty());
        let y = vars.fresh("y", p.f.nat_ty());
        let goal = Equation::new(
            Term::apps(p.f.add, vec![Term::var(x), Term::var(y)]),
            Term::apps(p.f.add, vec![Term::var(y), Term::var(x)]),
        );
        let err = structural_induction(&p.prog, goal, vars, x).unwrap_err();
        assert!(matches!(err, InductionError::BranchStuck { .. }), "{err:?}");
    }

    #[test]
    fn non_datatype_variables_are_rejected() {
        let p = nat_list_program();
        let mut vars = VarStore::new();
        let f = vars.fresh("f", cycleq_term::Type::arrow(p.f.nat_ty(), p.f.nat_ty()));
        let goal = Equation::new(Term::sym(p.f.zero), Term::sym(p.f.zero));
        assert_eq!(
            structural_induction(&p.prog, goal, vars, f).unwrap_err(),
            InductionError::NotADatatype
        );
    }
}
