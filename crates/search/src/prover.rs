//! Goal-directed cyclic proof search (§5.1, §6).
//!
//! The search is a bounded depth-first search over the inference rules,
//! prioritised as in the paper: reduction, reflexivity, congruence, function
//! extensionality, substitution, case analysis. The first four always
//! simplify the goal without loss of generality and are therefore
//! *committed* — the search never backtracks past them. `(Subst)` and
//! `(Case)` are choice points.
//!
//! `(Subst)` acts as the matching function for cycle detection: the lemma is
//! always an existing node of the proof (restricted by
//! [`LemmaPolicy`](crate::LemmaPolicy) to `(Case)`-justified nodes, §5.1) or
//! a previously proven hint. Whenever a `(Subst)` back edge is created, the
//! incremental size-change closure is extended; if an idempotent self-loop
//! without a strict self-edge appears, the cycle can never satisfy the
//! global condition and the candidate is pruned immediately (§5.2).

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use cycleq_proof::{edge_graph_id, CaseBranch, NodeId, Preproof, RuleApp, Side, SubstApp};
use cycleq_rewrite::{
    CancelToken, Interrupted, MemoRewriter, NormalizedId, Program, RunLimits, SharedNormalFormCache,
};
use cycleq_sizechange::{GraphId, IncrementalClosure, Mark, Soundness};
use cycleq_term::{
    CanonKey, Equation, Head, IdSubst, Term, TermId, TyUnifier, Type, VarId, VarStore,
};

use crate::budget::Budget;
use crate::config::{LemmaPolicy, SearchConfig, SearchStats};

/// Floor above which type variables are inference metavariables (below are
/// the rigid variables of the goal's polymorphic types).
const TYVAR_FLOOR: u32 = 100_000;

/// The verdict of a proof attempt.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Outcome {
    /// A cyclic proof was found; `root` is the goal's node.
    Proved {
        /// The node carrying the original goal.
        root: NodeId,
    },
    /// The goal was refuted: case analysis and reduction alone led to a
    /// constructor clash, so some ground instance of the goal is false.
    Refuted,
    /// The bounded search space was exhausted without a proof.
    Exhausted,
    /// The wall-clock budget ran out.
    Timeout,
    /// The node budget ran out.
    NodeBudget,
    /// The caller cancelled the search through its
    /// [`CancelToken`](cycleq_rewrite::CancelToken).
    Cancelled,
    /// A hint lemma could not be proved first.
    HintFailed {
        /// Index of the failing hint.
        index: usize,
    },
    /// The search panicked and was isolated by the engine's fault boundary
    /// (the search itself never constructs this variant).
    Panicked {
        /// The panic payload, when it was a string.
        message: String,
    },
}

impl Outcome {
    /// Whether the outcome is a proof.
    pub fn is_proved(&self) -> bool {
        matches!(self, Outcome::Proved { .. })
    }
}

/// The result of a proof attempt: verdict, the (pre)proof built, and search
/// statistics.
#[derive(Clone, Debug)]
pub struct ProofResult {
    /// The verdict.
    pub outcome: Outcome,
    /// The proof on success; the partial preproof otherwise (diagnostics).
    pub proof: Preproof,
    /// Search counters.
    pub stats: SearchStats,
}

/// Called whenever the iterative-deepening loop starts another round, with
/// the new depth bound and the monotonic time elapsed since the prove call
/// began (covering every finished round); lets embedders stream
/// `RoundDeepened`-style progress events from a running search without
/// wall-clock bookkeeping of their own.
pub type RoundObserver = Arc<dyn Fn(usize, Duration) + Send + Sync>;

/// A cyclic equational prover for a fixed program.
#[derive(Clone)]
pub struct Prover<'a> {
    prog: &'a Program,
    config: SearchConfig,
    shared: Option<SharedNormalFormCache>,
    observer: Option<RoundObserver>,
}

impl fmt::Debug for Prover<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Prover")
            .field("config", &self.config)
            .field("shared", &self.shared.is_some())
            .field("observer", &self.observer.is_some())
            .finish_non_exhaustive()
    }
}

impl<'a> Prover<'a> {
    /// A prover with the default configuration.
    pub fn new(prog: &'a Program) -> Prover<'a> {
        Prover {
            prog,
            config: SearchConfig::default(),
            shared: None,
            observer: None,
        }
    }

    /// A prover with an explicit configuration.
    pub fn with_config(prog: &'a Program, config: SearchConfig) -> Prover<'a> {
        Prover {
            prog,
            config,
            shared: None,
            observer: None,
        }
    }

    /// Attaches a deepening-round observer, called with the new depth bound
    /// each time the search starts another iterative-deepening round beyond
    /// the first.
    pub fn with_round_observer(mut self, observer: RoundObserver) -> Prover<'a> {
        self.observer = Some(observer);
        self
    }

    /// Attaches a program-scoped shared normal-form cache: every deepening
    /// round's rewriter consults and populates it, so reductions are shared
    /// across rounds, across goals and across worker threads. The cache
    /// must have been created for `prog` (see
    /// [`cycleq_rewrite::SharedNormalFormCache`]).
    pub fn with_shared_cache(mut self, cache: SharedNormalFormCache) -> Prover<'a> {
        self.shared = Some(cache);
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &SearchConfig {
        &self.config
    }

    /// Attempts to prove `goal`, whose variables live in `vars`.
    pub fn prove(&self, goal: Equation, vars: VarStore) -> ProofResult {
        self.prove_with_hints(goal, vars, &[])
    }

    /// Attempts to prove `goal` after first proving each `hint` equation
    /// (over the same variable store) and making the proven hints available
    /// as `(Subst)` lemmas.
    ///
    /// This realises the paper's observation (§6.2) that problems such as
    /// IsaPlanner 47/54/65/69 become provable once the commutativity of
    /// `max`/`add` is supplied — here the hint itself is proved by the same
    /// engine, so the final proof is checkable end to end.
    pub fn prove_with_hints(
        &self,
        goal: Equation,
        vars: VarStore,
        hints: &[Equation],
    ) -> ProofResult {
        self.prove_with_budget(goal, vars, hints, &Budget::unlimited(), None)
    }

    /// Attempts to prove `goal` under an external [`Budget`] and optional
    /// [`CancelToken`], on top of the configuration's own limits (the
    /// effective limit in each dimension is the tighter of the two).
    ///
    /// Cancelling the token from another thread makes the search return
    /// [`Outcome::Cancelled`] promptly: the token is polled at every DFS
    /// node *and* inside committed reduction chains, so even a search stuck
    /// deep in one explosive normalisation notices within a few thousand
    /// contractions.
    pub fn prove_with_budget(
        &self,
        goal: Equation,
        vars: VarStore,
        hints: &[Equation],
        budget: &Budget,
        cancel: Option<&CancelToken>,
    ) -> ProofResult {
        let _span = cycleq_trace::span!("prove_goal");
        let start = Instant::now();
        let config_budget = Budget {
            timeout: self.config.timeout,
            max_nodes: Some(self.config.max_nodes),
            fuel: Some(self.config.reduction_fuel),
        };
        let effective = config_budget.min(budget);
        let mut limits = RunLimits::with_deadline(effective.timeout.map(|d| start + d));
        if let Some(token) = cancel {
            limits = limits.with_cancel(token.clone());
        }
        let max_nodes = effective.max_nodes.unwrap_or(usize::MAX);
        let fuel = effective.fuel.unwrap_or(usize::MAX);
        let mut depth = self.config.initial_depth.min(self.config.max_depth).max(1);
        let mut total = SearchStats::default();
        loop {
            // The node budget is a *per-call* ceiling: nodes created by
            // earlier deepening rounds count against it, so deepening can
            // never multiply the requested bound.
            let nodes_before = total.nodes_created;
            let round_span = cycleq_trace::span!("round");
            let (result, hit_depth_limit) = self.prove_round(
                goal.clone(),
                vars.clone(),
                hints,
                &limits,
                nodes_before,
                max_nodes,
                fuel,
                depth,
            );
            drop(round_span);
            total.absorb(&result.stats);
            total.rounds += 1;
            // Gauges, not counters: each deepening round re-interns into a
            // fresh store, so report the final round's sizes rather than
            // the sums `absorb` produced.
            total.closure_graphs = result.stats.closure_graphs;
            total.interned_nodes = result.stats.interned_nodes;
            total.interned_graphs = result.stats.interned_graphs;
            let deepen = matches!(result.outcome, Outcome::Exhausted)
                && hit_depth_limit
                && depth < self.config.max_depth;
            if !deepen {
                let mut stats = total;
                stats.elapsed = start.elapsed();
                return ProofResult {
                    outcome: result.outcome,
                    proof: result.proof,
                    stats,
                };
            }
            depth = (depth + self.config.depth_step).min(self.config.max_depth);
            if let Some(observer) = &self.observer {
                observer(depth, start.elapsed());
            }
        }
    }

    /// One bounded-DFS round at a fixed depth limit.
    #[allow(clippy::too_many_arguments)]
    fn prove_round(
        &self,
        goal: Equation,
        vars: VarStore,
        hints: &[Equation],
        limits: &RunLimits,
        nodes_before: usize,
        max_nodes: usize,
        fuel: usize,
        depth_limit: usize,
    ) -> (ProofResult, bool) {
        let mut rw = MemoRewriter::new(&self.prog.sig, &self.prog.trs).with_fuel(fuel);
        if let Some(cache) = &self.shared {
            rw = rw.with_shared_cache(cache.clone());
        }
        let mut search = Search {
            prog: self.prog,
            config: &self.config,
            depth_limit,
            proof: Preproof::with_vars(vars),
            rw,
            closure: IncrementalClosure::new(),
            edge_memo: HashMap::new(),
            lemmas: Vec::new(),
            path_keys: Vec::new(),
            stats: SearchStats::default(),
            limits: limits.clone(),
            nodes_before,
            max_nodes,
        };
        let mut outcome = None;
        for (i, hint) in hints.iter().enumerate() {
            let id = search.push_node(hint.clone());
            match search.solve(id, 0, true) {
                Ok(Solve::Solved) => search.lemmas.push(id),
                Ok(Solve::Failed) => {
                    outcome = Some(Outcome::HintFailed { index: i });
                    break;
                }
                Err(stop) => {
                    outcome = Some(stop_outcome(stop));
                    break;
                }
            }
        }
        let root = search.push_node(goal);
        let outcome = outcome.unwrap_or_else(|| match search.solve(root, 0, true) {
            Ok(Solve::Solved) => Outcome::Proved { root },
            Ok(Solve::Failed) => Outcome::Exhausted,
            Err(stop) => stop_outcome(stop),
        });
        let mut stats = search.stats;
        stats.closure_graphs = search.closure.num_graphs();
        stats.closure_compositions = search.closure.compositions();
        stats.composition_memo_hits = search.closure.memo_hits();
        stats.graphs_subsumed = search.closure.subsumed();
        stats.interned_graphs = search.closure.interned_graphs();
        stats.reduce_memo_hits = search.rw.memo_hits();
        stats.shared_cache_hits = search.rw.shared_cache_hits();
        stats.shared_cache_misses = search.rw.shared_cache_misses();
        stats.interned_nodes = search.rw.store().len();
        let hit = stats.depth_limit_hits > 0;
        (
            ProofResult {
                outcome,
                proof: search.proof,
                stats,
            },
            hit,
        )
    }
}

fn stop_outcome(stop: Stop) -> Outcome {
    match stop {
        Stop::Timeout => Outcome::Timeout,
        Stop::Cancelled => Outcome::Cancelled,
        Stop::Budget => Outcome::NodeBudget,
        Stop::Refuted => Outcome::Refuted,
    }
}

#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum Solve {
    Solved,
    Failed,
}

#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum Stop {
    Timeout,
    Cancelled,
    Budget,
    Refuted,
}

type SolveResult = Result<Solve, Stop>;

struct Frame {
    proof: (usize, usize),
    closure: Mark,
    lemmas: usize,
}

struct Search<'a> {
    prog: &'a Program,
    config: &'a SearchConfig,
    /// Depth bound of the current iterative-deepening round.
    depth_limit: usize,
    proof: Preproof,
    /// The memoising rewriter; owns the term store every node equation of
    /// this round is interned into. Normal forms are cached across the
    /// whole round (including backtracking — the rewrite system never
    /// changes, so entries stay valid).
    rw: MemoRewriter<'a>,
    /// The incremental size-change closure; owns the round's
    /// [`cycleq_sizechange::GraphStore`], so compositions stay memoized
    /// across backtracking.
    closure: IncrementalClosure<VarId, NodeId>,
    /// The interned edge graph per `(node, premise)` justification,
    /// invalidated on undo for reopened/truncated nodes (a re-justified
    /// node gets different edge graphs).
    edge_memo: HashMap<(NodeId, usize), GraphId>,
    /// Lemma candidates: `(Case)`-justified ancestors/cousins plus proven
    /// hints, in creation order.
    lemmas: Vec<NodeId>,
    /// Canonical keys of the goals on the current DFS path; used to prune
    /// `(Subst)` continuations that recreate an ancestor goal verbatim.
    path_keys: Vec<CanonKey>,
    stats: SearchStats,
    /// External limits (deadline + cancellation), polled at every DFS node
    /// and inside committed reduction chains.
    limits: RunLimits,
    /// Nodes created by earlier deepening rounds of the same prove call;
    /// counted against [`Search::max_nodes`].
    nodes_before: usize,
    /// Effective per-call node budget (the tighter of config and external
    /// budget).
    max_nodes: usize,
}

impl<'a> Search<'a> {
    /// Pushes an open node, interning both sides into the round's store.
    fn push_node(&mut self, eq: Equation) -> NodeId {
        let l = self.rw.intern(eq.lhs());
        let r = self.rw.intern(eq.rhs());
        self.push_node_ids(eq, (l, r))
    }

    /// Pushes an open node whose sides are already interned.
    fn push_node_ids(&mut self, eq: Equation, ids: (TermId, TermId)) -> NodeId {
        self.stats.nodes_created += 1;
        self.proof.push_open_interned(eq, ids)
    }

    /// The interned sides of a node (every node of this search has them).
    fn node_ids(&self, node: NodeId) -> (TermId, TermId) {
        self.proof
            .interned(node)
            .expect("search interns every node it pushes")
    }

    /// Normalises with the round's memo table, honouring the wall-clock
    /// deadline and the cancellation token *inside* the reduction loop: a
    /// single long committed reduction chain can neither blow past
    /// `config.timeout` nor survive a cancellation.
    fn normalize_or_stop(&mut self, id: TermId) -> Result<NormalizedId, Stop> {
        self.rw
            .try_normalize_id(id, &self.limits)
            .map_err(|why| match why {
                Interrupted::Deadline => Stop::Timeout,
                Interrupted::Cancelled => Stop::Cancelled,
            })
    }

    fn mark(&self) -> Frame {
        Frame {
            proof: self.proof.mark(),
            closure: self.closure.mark(),
            lemmas: self.lemmas.len(),
        }
    }

    fn undo(&mut self, frame: Frame, node: NodeId) {
        let keep = frame.proof.0;
        self.proof.truncate(frame.proof);
        self.proof.reopen(node);
        self.closure.undo_to(frame.closure);
        self.lemmas.truncate(frame.lemmas);
        // Edge graphs are keyed by justification: entries of truncated
        // nodes (their ids will be reused) and of the reopened node (it
        // will be re-justified differently) are stale.
        self.edge_memo
            .retain(|&(n, _), _| n.index() < keep && n != node);
    }

    /// Adds the size-change edge for premise `i` of `v` to the incremental
    /// closure. The graph is built directly into the closure's store and
    /// memoised per `(node, premise)` justification for the lifetime of
    /// that justification.
    fn add_proof_edge(&mut self, v: NodeId, i: usize) -> Soundness {
        let _span = cycleq_trace::span!("closure_update");
        let g = match self.edge_memo.get(&(v, i)) {
            Some(&g) => g,
            None => {
                let g = edge_graph_id(&self.proof, v, i, self.closure.store_mut());
                self.edge_memo.insert((v, i), g);
                g
            }
        };
        let p = self.proof.node(v).premises[i];
        self.closure.add_edge_id(v, p, g)
    }

    fn check_limits(&mut self) -> Result<(), Stop> {
        self.limits.check().map_err(|why| match why {
            Interrupted::Deadline => Stop::Timeout,
            Interrupted::Cancelled => Stop::Cancelled,
        })?;
        if self.nodes_before + self.stats.nodes_created > self.max_nodes {
            return Err(Stop::Budget);
        }
        Ok(())
    }

    fn solve(&mut self, node: NodeId, depth: usize, pure_path: bool) -> SolveResult {
        let _span = cycleq_trace::span!("expand");
        self.check_limits()?;
        let (lid, rid) = self.node_ids(node);

        // 1. (Reduce) — committed. Memoised, and deadline-checked inside
        //    the reduction loop.
        let ln = self.normalize_or_stop(lid)?;
        let rn = self.normalize_or_stop(rid)?;
        if !ln.in_normal_form || !rn.in_normal_form {
            // Suspected divergence; give up on this branch.
            return Ok(Solve::Failed);
        }
        if ln.id != lid || rn.id != rid {
            self.stats.rule_reduce += 1;
            let child_eq = Equation::new(self.rw.resolve(ln.id), self.rw.resolve(rn.id));
            let child = self.push_node_ids(child_eq, (ln.id, rn.id));
            self.proof.justify(node, RuleApp::Reduce, vec![child]);
            self.add_proof_edge(node, 0);
            return self.solve(child, depth, pure_path);
        }

        // 2. (Refl): hash-consing makes triviality an id comparison.
        if lid == rid {
            self.stats.rule_refl += 1;
            self.proof.justify(node, RuleApp::Refl, vec![]);
            return Ok(Solve::Solved);
        }

        let eq = self.proof.node(node).eq.clone();

        // 3. Constructor decomposition: clash refutation or congruence —
        //    committed.
        let lc = eq.lhs().as_constructor(&self.prog.sig).map(|(k, _)| k);
        let rc = eq.rhs().as_constructor(&self.prog.sig).map(|(k, _)| k);
        if let (Some(k1), Some(k2)) = (lc, rc) {
            if k1 != k2 {
                // Constructors are free: no instance satisfies the equation.
                return if pure_path {
                    Err(Stop::Refuted)
                } else {
                    Ok(Solve::Failed)
                };
            }
            let n = eq.lhs().args().len();
            let largs = self.rw.store().args(lid).to_vec();
            let rargs = self.rw.store().args(rid).to_vec();
            let mut premises = Vec::with_capacity(n);
            for i in 0..n {
                let sub_eq = Equation::new(eq.lhs().args()[i].clone(), eq.rhs().args()[i].clone());
                premises.push(self.push_node_ids(sub_eq, (largs[i], rargs[i])));
            }
            self.stats.rule_cong += 1;
            self.proof.justify(node, RuleApp::Cong, premises.clone());
            for i in 0..n {
                self.add_proof_edge(node, i);
            }
            for p in premises {
                match self.solve(p, depth + 1, pure_path)? {
                    Solve::Solved => {}
                    Solve::Failed => return Ok(Solve::Failed),
                }
            }
            return Ok(Solve::Solved);
        }

        // 4. Function extensionality — committed when the goal has arrow
        //    type. Residual inference metavariables in the argument type are
        //    implicitly universally quantified and are generalised to fresh
        //    rigid type variables.
        let mut uni = TyUnifier::new(TYVAR_FLOOR);
        if let Ok(Type::Arrow(arg, _)) =
            eq.lhs()
                .infer_type(&self.prog.sig, self.proof.vars(), &mut uni)
        {
            let arg_ty = generalize_metas(*arg, self.proof.vars());
            let x = self.proof.vars_mut().fresh("x", arg_ty);
            let prem = Equation::new(
                Term::app(eq.lhs().clone(), Term::var(x)),
                Term::app(eq.rhs().clone(), Term::var(x)),
            );
            self.stats.rule_funext += 1;
            let child = self.push_node(prem);
            self.proof
                .justify(node, RuleApp::FunExt { fresh: x }, vec![child]);
            self.add_proof_edge(node, 0);
            return self.solve(child, depth + 1, pure_path);
        }

        if depth >= self.depth_limit {
            self.stats.depth_limit_hits += 1;
            return Ok(Solve::Failed);
        }

        self.path_keys.push(self.rw.store().canonical_key(lid, rid));
        let result = self.solve_choice_points(node, depth, lid, rid);
        self.path_keys.pop();
        result
    }

    /// The backtrackable rules: `(Subst)` then `(Case)`, both running over
    /// interned terms.
    fn solve_choice_points(
        &mut self,
        node: NodeId,
        depth: usize,
        lid: TermId,
        rid: TermId,
    ) -> SolveResult {
        // 5. (Subst): try existing lemmas, most recent first.
        let candidates: Vec<NodeId> = match self.config.lemma_policy {
            LemmaPolicy::CaseOnly => self.lemmas.iter().rev().copied().collect(),
            LemmaPolicy::AllNodes => {
                let mut all: Vec<NodeId> = self
                    .proof
                    .nodes()
                    .filter(|(id, n)| *id != node && !matches!(n.rule, RuleApp::Open))
                    .map(|(id, _)| id)
                    .collect();
                all.reverse();
                all
            }
        };
        for lemma_id in candidates {
            if lemma_id == node {
                continue;
            }
            let (lemma_l, lemma_r) = self.node_ids(lemma_id);
            for flipped in [false, true] {
                let (from, to) = if flipped {
                    (lemma_r, lemma_l)
                } else {
                    (lemma_l, lemma_r)
                };
                // The pattern side must be a genuine pattern: not a bare
                // variable (would match everything), and binding every
                // variable of the replacement side.
                if self.rw.store().as_var(from).is_some()
                    || self.rw.store().head_sym(from).is_none()
                {
                    continue;
                }
                if !self.rw.store().vars_subset_of(to, from) {
                    continue;
                }
                for side in [Side::Lhs, Side::Rhs] {
                    let side_id = match side {
                        Side::Lhs => lid,
                        Side::Rhs => rid,
                    };
                    for (pos, sub) in self.rw.store().positions(side_id) {
                        if self.rw.store().as_var(sub).is_some() {
                            continue;
                        }
                        let Some(theta) = self.rw.store_mut().match_terms(from, sub) else {
                            continue;
                        };
                        let replacement = self.rw.store_mut().subst(to, &theta);
                        if replacement == sub {
                            continue;
                        }
                        self.stats.subst_attempts += 1;
                        let rewritten = self
                            .rw
                            .store_mut()
                            .replace_at(side_id, &pos, replacement)
                            .expect("valid position");
                        let (cont_l, cont_r) = match side {
                            Side::Lhs => (rewritten, rid),
                            Side::Rhs => (lid, rewritten),
                        };
                        // Prune continuations that recreate a goal already on
                        // the DFS path (directly or after normalisation):
                        // re-deriving an ancestor goal by rewriting is a loop,
                        // not progress. Cycles must close via the lemma back
                        // edge instead.
                        let cont_key = self.rw.store().canonical_key(cont_l, cont_r);
                        if self.path_keys.contains(&cont_key) {
                            continue;
                        }
                        let nl = self.normalize_or_stop(cont_l)?;
                        let nr = self.normalize_or_stop(cont_r)?;
                        let norm_key = self.rw.store().canonical_key(nl.id, nr.id);
                        if self.path_keys.contains(&norm_key) {
                            continue;
                        }
                        let frame = self.mark();
                        let cont_eq =
                            Equation::new(self.rw.resolve(cont_l), self.rw.resolve(cont_r));
                        let cont = self.push_node_ids(cont_eq, (cont_l, cont_r));
                        let theta_owned = theta.resolve(self.rw.store());
                        self.proof.justify(
                            node,
                            RuleApp::Subst(SubstApp {
                                side,
                                pos: pos.clone(),
                                theta: theta_owned,
                                lemma_flipped: flipped,
                            }),
                            vec![lemma_id, cont],
                        );
                        let s0 = self.add_proof_edge(node, 0);
                        let s1 = self.add_proof_edge(node, 1);
                        if s0 == Soundness::Unsound || s1 == Soundness::Unsound {
                            self.stats.unsound_cycles_pruned += 1;
                            self.undo(frame, node);
                            continue;
                        }
                        match self.solve(cont, depth + 1, false)? {
                            Solve::Solved => return Ok(Solve::Solved),
                            Solve::Failed => self.undo(frame, node),
                        }
                    }
                }
            }
        }

        // 6. (Case): split on a variable blocking reduction.
        let mut cands = self.rw.case_candidates_id(lid);
        for v in self.rw.case_candidates_id(rid) {
            if !cands.contains(&v) {
                cands.push(v);
            }
        }
        for v in cands {
            let vty = self.proof.vars().ty(v).clone();
            let Some((data, ty_args)) = vty.as_data() else {
                continue;
            };
            let ty_args = ty_args.to_vec();
            let cons: Vec<_> = self.prog.sig.constructors_of(data).to_vec();
            if cons.is_empty() {
                continue;
            }
            self.stats.case_splits += 1;
            let frame = self.mark();
            let mut branches = Vec::with_capacity(cons.len());
            let mut premises = Vec::with_capacity(cons.len());
            for &k in &cons {
                let inst = self
                    .prog
                    .sig
                    .sym(k)
                    .scheme()
                    .instantiate_with(&ty_args)
                    .expect("constructor scheme arity matches datatype");
                let (arg_tys, _) = inst.uncurry();
                let base = self.proof.vars().name(v).to_string();
                let fresh: Vec<VarId> = arg_tys
                    .iter()
                    .enumerate()
                    .map(|(i, t)| {
                        let name = if arg_tys.len() == 1 {
                            format!("{base}'")
                        } else {
                            format!("{base}'{}", i + 1)
                        };
                        self.proof.vars_mut().fresh(&name, (*t).clone())
                    })
                    .collect();
                let pattern_args: Vec<TermId> =
                    fresh.iter().map(|w| self.rw.store_mut().var(*w)).collect();
                let pattern = self.rw.store_mut().node(Head::Sym(k), pattern_args);
                let theta = IdSubst::singleton(v, pattern);
                let branch_l = self.rw.store_mut().subst(lid, &theta);
                let branch_r = self.rw.store_mut().subst(rid, &theta);
                let branch_eq = Equation::new(self.rw.resolve(branch_l), self.rw.resolve(branch_r));
                premises.push(self.push_node_ids(branch_eq, (branch_l, branch_r)));
                branches.push(CaseBranch { con: k, fresh });
            }
            self.proof
                .justify(node, RuleApp::Case { var: v, branches }, premises.clone());
            for i in 0..premises.len() {
                self.add_proof_edge(node, i);
            }
            // The node is now (Case)-justified: it becomes a lemma candidate
            // for its own subtree — this is how cycles form.
            self.lemmas.push(node);
            let mut all = true;
            for p in &premises {
                match self.solve(*p, depth + 1, true)? {
                    Solve::Solved => {}
                    Solve::Failed => {
                        all = false;
                        break;
                    }
                }
            }
            if all {
                return Ok(Solve::Solved);
            }
            self.undo(frame, node);
        }

        Ok(Solve::Failed)
    }
}

/// Replaces inference metavariables (ids ≥ [`TYVAR_FLOOR`]) by fresh rigid
/// type variables above every rigid id currently used by the store.
fn generalize_metas(ty: Type, vars: &VarStore) -> Type {
    let metas: Vec<_> = ty
        .vars()
        .into_iter()
        .filter(|v| v.0 >= TYVAR_FLOOR)
        .collect();
    if metas.is_empty() {
        return ty;
    }
    let mut next = vars
        .iter()
        .flat_map(|(_, _, t)| t.vars())
        .filter(|v| v.0 < TYVAR_FLOOR)
        .map(|v| v.0 + 1)
        .max()
        .unwrap_or(0);
    let map: std::collections::BTreeMap<_, _> = metas
        .into_iter()
        .map(|m| {
            let rigid = cycleq_term::TyVarId(next);
            next += 1;
            (m, Type::Var(rigid))
        })
        .collect();
    ty.subst(&map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cycleq_proof::{check, GlobalCheck};
    use cycleq_rewrite::fixtures::nat_list_program;

    fn prove_fixture(
        goal: impl FnOnce(&cycleq_rewrite::fixtures::ProgramFixture, &mut VarStore) -> Equation,
    ) -> (ProofResult, cycleq_rewrite::fixtures::ProgramFixture) {
        let p = nat_list_program();
        let mut vars = VarStore::new();
        let eq = goal(&p, &mut vars);
        let prover = Prover::new(&p.prog);
        let res = prover.prove(eq, vars);
        (res, p)
    }

    #[test]
    fn proves_ground_addition() {
        let (res, p) = prove_fixture(|p, _| {
            Equation::new(
                Term::apps(p.f.add, vec![p.f.num(2), p.f.num(2)]),
                p.f.num(4),
            )
        });
        assert!(res.outcome.is_proved(), "{:?}", res.outcome);
        check(&res.proof, &p.prog, GlobalCheck::VariableTraces).unwrap();
    }

    #[test]
    fn proves_add_zero_left() {
        // add Z y ≈ y reduces away.
        let (res, p) = prove_fixture(|p, vars| {
            let y = vars.fresh("y", p.f.nat_ty());
            Equation::new(
                Term::apps(p.f.add, vec![Term::sym(p.f.zero), Term::var(y)]),
                Term::var(y),
            )
        });
        assert!(res.outcome.is_proved());
        check(&res.proof, &p.prog, GlobalCheck::VariableTraces).unwrap();
    }

    #[test]
    fn proves_add_zero_right_by_induction() {
        // add x Z ≈ x needs a cycle.
        let (res, p) = prove_fixture(|p, vars| {
            let x = vars.fresh("x", p.f.nat_ty());
            Equation::new(
                Term::apps(p.f.add, vec![Term::var(x), Term::sym(p.f.zero)]),
                Term::var(x),
            )
        });
        assert!(res.outcome.is_proved(), "{:?}", res.outcome);
        let report = check(&res.proof, &p.prog, GlobalCheck::VariableTraces).unwrap();
        assert!(report.back_edges >= 1, "expected a cycle");
    }

    #[test]
    fn proves_commutativity_of_addition() {
        // The headline example (Fig. 4): no hints, no external lemmas.
        let (res, p) = prove_fixture(|p, vars| {
            let x = vars.fresh("x", p.f.nat_ty());
            let y = vars.fresh("y", p.f.nat_ty());
            Equation::new(
                Term::apps(p.f.add, vec![Term::var(x), Term::var(y)]),
                Term::apps(p.f.add, vec![Term::var(y), Term::var(x)]),
            )
        });
        assert!(res.outcome.is_proved(), "{:?}", res.outcome);
        let report = check(&res.proof, &p.prog, GlobalCheck::VariableTraces).unwrap();
        assert!(report.back_edges >= 2, "commutativity needs nested cycles");
    }

    #[test]
    fn proves_add_succ_right() {
        // add x (S y) ≈ S (add x y) — the lemma Cyclist needs as a hint.
        let (res, p) = prove_fixture(|p, vars| {
            let x = vars.fresh("x", p.f.nat_ty());
            let y = vars.fresh("y", p.f.nat_ty());
            Equation::new(
                Term::apps(p.f.add, vec![Term::var(x), p.f.s(Term::var(y))]),
                p.f.s(Term::apps(p.f.add, vec![Term::var(x), Term::var(y)])),
            )
        });
        assert!(res.outcome.is_proved(), "{:?}", res.outcome);
        check(&res.proof, &p.prog, GlobalCheck::VariableTraces).unwrap();
    }

    #[test]
    fn proves_associativity_of_addition() {
        let (res, p) = prove_fixture(|p, vars| {
            let x = vars.fresh("x", p.f.nat_ty());
            let y = vars.fresh("y", p.f.nat_ty());
            let z = vars.fresh("z", p.f.nat_ty());
            Equation::new(
                Term::apps(
                    p.f.add,
                    vec![
                        Term::apps(p.f.add, vec![Term::var(x), Term::var(y)]),
                        Term::var(z),
                    ],
                ),
                Term::apps(
                    p.f.add,
                    vec![
                        Term::var(x),
                        Term::apps(p.f.add, vec![Term::var(y), Term::var(z)]),
                    ],
                ),
            )
        });
        assert!(res.outcome.is_proved(), "{:?}", res.outcome);
        check(&res.proof, &p.prog, GlobalCheck::VariableTraces).unwrap();
    }

    #[test]
    fn proves_length_of_append() {
        // len (app xs ys) ≈ add (len xs) (len ys).
        let (res, p) = prove_fixture(|p, vars| {
            let nat_list = p.f.list_ty(p.f.nat_ty());
            let xs = vars.fresh("xs", nat_list.clone());
            let ys = vars.fresh("ys", nat_list);
            Equation::new(
                Term::apps(
                    p.f.len,
                    vec![Term::apps(p.f.app, vec![Term::var(xs), Term::var(ys)])],
                ),
                Term::apps(
                    p.f.add,
                    vec![
                        Term::apps(p.f.len, vec![Term::var(xs)]),
                        Term::apps(p.f.len, vec![Term::var(ys)]),
                    ],
                ),
            )
        });
        assert!(res.outcome.is_proved(), "{:?}", res.outcome);
        check(&res.proof, &p.prog, GlobalCheck::VariableTraces).unwrap();
    }

    #[test]
    fn refutes_false_ground_equation() {
        let (res, _) = prove_fixture(|p, _| {
            Equation::new(
                Term::apps(p.f.add, vec![p.f.num(1), p.f.num(1)]),
                p.f.num(3),
            )
        });
        assert_eq!(res.outcome, Outcome::Refuted);
    }

    #[test]
    fn refutes_false_open_equation() {
        // add x Z ≈ Z fails at x = S x'.
        let (res, _) = prove_fixture(|p, vars| {
            let x = vars.fresh("x", p.f.nat_ty());
            Equation::new(
                Term::apps(p.f.add, vec![Term::var(x), Term::sym(p.f.zero)]),
                Term::sym(p.f.zero),
            )
        });
        assert_eq!(res.outcome, Outcome::Refuted);
    }

    #[test]
    fn unprovable_within_budget_is_exhausted_or_times_out() {
        // add x y ≈ add y (S x) is false; refutation requires noticing
        // S-towers never match, which the clash finds quickly.
        let (res, _) = prove_fixture(|p, vars| {
            let x = vars.fresh("x", p.f.nat_ty());
            let y = vars.fresh("y", p.f.nat_ty());
            Equation::new(
                Term::apps(p.f.add, vec![Term::var(x), Term::var(y)]),
                Term::apps(p.f.add, vec![Term::var(y), p.f.s(Term::var(x))]),
            )
        });
        assert!(
            matches!(
                res.outcome,
                Outcome::Refuted | Outcome::Exhausted | Outcome::Timeout
            ),
            "{:?}",
            res.outcome
        );
    }

    #[test]
    fn hints_enable_and_are_checked() {
        // Prove add x (S y) ≈ S (add x y) as a hint, then use it.
        let p = nat_list_program();
        let mut vars = VarStore::new();
        let x = vars.fresh("x", p.f.nat_ty());
        let y = vars.fresh("y", p.f.nat_ty());
        let hint = Equation::new(
            Term::apps(p.f.add, vec![Term::var(x), p.f.s(Term::var(y))]),
            p.f.s(Term::apps(p.f.add, vec![Term::var(x), Term::var(y)])),
        );
        let goal = Equation::new(
            Term::apps(p.f.add, vec![Term::var(x), Term::var(y)]),
            Term::apps(p.f.add, vec![Term::var(y), Term::var(x)]),
        );
        let prover = Prover::new(&p.prog);
        let res = prover.prove_with_hints(goal, vars, &[hint]);
        assert!(res.outcome.is_proved(), "{:?}", res.outcome);
        check(&res.proof, &p.prog, GlobalCheck::VariableTraces).unwrap();
    }

    #[test]
    fn committed_reduction_chain_respects_wall_clock_deadline() {
        // Regression test: the deadline used to be checked only between
        // rule applications, so a single committed reduction of a
        // non-terminating (or merely explosive) program could blow past
        // `config.timeout`. With effectively unlimited fuel, only the
        // in-reduction deadline check can stop this goal.
        use std::time::Duration;

        let (prog, lp, zero) = looping_program();
        let goal = Equation::new(Term::apps(lp, vec![Term::sym(zero)]), Term::sym(zero));
        let config = SearchConfig {
            reduction_fuel: usize::MAX,
            timeout: Some(Duration::from_millis(50)),
            ..SearchConfig::default()
        };
        let prover = Prover::with_config(&prog, config);
        let start = Instant::now();
        let res = prover.prove(goal, VarStore::new());
        assert_eq!(res.outcome, Outcome::Timeout);
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "deadline was not honoured inside the committed reduction: {:?}",
            start.elapsed()
        );
    }

    /// A program whose single rule loops forever: `loop x → loop x`.
    fn looping_program() -> (Program, cycleq_term::SymId, cycleq_term::SymId) {
        use cycleq_rewrite::Trs;
        use cycleq_term::{Signature, TypeScheme};

        let mut sig = Signature::new();
        let nat = sig.add_datatype("Nat", 0).unwrap();
        let zero = sig.add_constructor("Z", nat, vec![]).unwrap();
        let nat_ty = Type::data0(nat);
        let lp = sig
            .add_defined(
                "loop",
                TypeScheme::mono(Type::arrow(nat_ty.clone(), nat_ty.clone())),
            )
            .unwrap();
        let mut trs = Trs::new();
        let x = trs.vars_mut().fresh("x", nat_ty.clone());
        trs.add_rule(
            &sig,
            lp,
            vec![Term::var(x)],
            Term::apps(lp, vec![Term::var(x)]),
        )
        .unwrap();
        (Program::new(sig, trs), lp, zero)
    }

    #[test]
    fn cancellation_aborts_a_committed_reduction_promptly() {
        use std::time::Duration;

        // No timeout, effectively unlimited fuel: only the cancellation
        // token can stop this goal, and it must do so from another thread
        // while the search is deep inside a committed reduction chain.
        let (prog, lp, zero) = looping_program();
        let goal = Equation::new(Term::apps(lp, vec![Term::sym(zero)]), Term::sym(zero));
        let config = SearchConfig {
            reduction_fuel: usize::MAX,
            timeout: None,
            ..SearchConfig::default()
        };
        let token = CancelToken::new();
        let worker_token = token.clone();
        let prover = Prover::with_config(&prog, config);
        let (res, waited) = std::thread::scope(|s| {
            let handle = s.spawn(|| {
                prover.prove_with_budget(
                    goal,
                    VarStore::new(),
                    &[],
                    &Budget::unlimited(),
                    Some(&worker_token),
                )
            });
            std::thread::sleep(Duration::from_millis(30));
            token.cancel();
            let cancelled_at = Instant::now();
            let res = handle.join().expect("search thread panicked");
            (res, cancelled_at.elapsed())
        });
        assert_eq!(res.outcome, Outcome::Cancelled);
        assert!(
            waited < Duration::from_millis(200),
            "cancellation latency too high: {waited:?}"
        );
        // The partial state is still inspectable.
        assert!(res.stats.elapsed >= Duration::from_millis(30));
    }

    #[test]
    fn budget_timeout_tightens_config_timeout() {
        use std::time::Duration;

        let (prog, lp, zero) = looping_program();
        let goal = Equation::new(Term::apps(lp, vec![Term::sym(zero)]), Term::sym(zero));
        // Config allows 30s; the per-call budget allows 50ms and must win.
        let config = SearchConfig {
            reduction_fuel: usize::MAX,
            timeout: Some(Duration::from_secs(30)),
            ..SearchConfig::default()
        };
        let prover = Prover::with_config(&prog, config);
        let budget = Budget::unlimited().with_timeout(Duration::from_millis(50));
        let start = Instant::now();
        let res = prover.prove_with_budget(goal, VarStore::new(), &[], &budget, None);
        assert_eq!(res.outcome, Outcome::Timeout);
        assert!(start.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn budget_node_cap_stops_search() {
        let p = nat_list_program();
        let mut vars = VarStore::new();
        let x = vars.fresh("x", p.f.nat_ty());
        let y = vars.fresh("y", p.f.nat_ty());
        let goal = Equation::new(
            Term::apps(p.f.add, vec![Term::var(x), Term::var(y)]),
            Term::apps(p.f.add, vec![Term::var(y), Term::var(x)]),
        );
        let budget = Budget::unlimited().with_max_nodes(3);
        let res = Prover::new(&p.prog).prove_with_budget(goal, vars, &[], &budget, None);
        assert_eq!(res.outcome, Outcome::NodeBudget);
    }

    #[test]
    fn node_budget_is_a_per_call_ceiling_across_deepening_rounds() {
        // With a tiny initial depth the deepening loop runs many rounds;
        // the node budget must bound the *sum* of nodes across rounds, not
        // reset each round.
        let p = nat_list_program();
        let mut vars = VarStore::new();
        let x = vars.fresh("x", p.f.nat_ty());
        let y = vars.fresh("y", p.f.nat_ty());
        let goal = Equation::new(
            Term::apps(p.f.add, vec![Term::var(x), Term::var(y)]),
            Term::apps(p.f.add, vec![Term::var(y), Term::var(x)]),
        );
        let config = SearchConfig {
            initial_depth: 1,
            depth_step: 1,
            ..SearchConfig::default()
        };
        let cap = 40;
        let budget = Budget::unlimited().with_max_nodes(cap);
        let res =
            Prover::with_config(&p.prog, config).prove_with_budget(goal, vars, &[], &budget, None);
        assert_eq!(res.outcome, Outcome::NodeBudget);
        assert!(
            res.stats.nodes_created <= cap + 5,
            "budget multiplied across rounds: {} nodes for a cap of {cap}",
            res.stats.nodes_created
        );
    }

    #[test]
    fn round_observer_sees_deepening_rounds() {
        use std::sync::atomic::{AtomicUsize, Ordering};

        let p = nat_list_program();
        let mut vars = VarStore::new();
        let x = vars.fresh("x", p.f.nat_ty());
        let y = vars.fresh("y", p.f.nat_ty());
        // Commutativity needs more than the initial depth of 1, so the
        // deepening loop must fire the observer at least once.
        let goal = Equation::new(
            Term::apps(p.f.add, vec![Term::var(x), Term::var(y)]),
            Term::apps(p.f.add, vec![Term::var(y), Term::var(x)]),
        );
        let config = SearchConfig {
            initial_depth: 1,
            depth_step: 1,
            ..SearchConfig::default()
        };
        let rounds = Arc::new(AtomicUsize::new(0));
        let seen = rounds.clone();
        let prover = Prover::with_config(&p.prog, config).with_round_observer(Arc::new(
            move |_depth, _elapsed| {
                seen.fetch_add(1, Ordering::Relaxed);
            },
        ));
        let res = prover.prove(goal, vars);
        assert!(res.outcome.is_proved(), "{:?}", res.outcome);
        assert!(rounds.load(Ordering::Relaxed) >= 1, "no deepening observed");
        assert_eq!(
            res.stats.rounds,
            rounds.load(Ordering::Relaxed) + 1,
            "every deepening adds a round on top of the first"
        );
    }

    #[test]
    fn stats_are_populated() {
        let (res, _) = prove_fixture(|p, vars| {
            let x = vars.fresh("x", p.f.nat_ty());
            Equation::new(
                Term::apps(p.f.add, vec![Term::var(x), Term::sym(p.f.zero)]),
                Term::var(x),
            )
        });
        assert!(res.stats.nodes_created > 0);
        assert!(res.stats.case_splits >= 1);
        assert!(res.stats.elapsed.as_nanos() > 0);
    }

    #[test]
    fn shared_cache_is_reused_across_goals_without_changing_outcomes() {
        let p = nat_list_program();
        let cache = SharedNormalFormCache::new();
        let goals = |vars: &mut VarStore| {
            let x = vars.fresh("x", p.f.nat_ty());
            let y = vars.fresh("y", p.f.nat_ty());
            vec![
                Equation::new(
                    Term::apps(p.f.add, vec![Term::var(x), Term::sym(p.f.zero)]),
                    Term::var(x),
                ),
                Equation::new(
                    Term::apps(p.f.add, vec![Term::var(x), p.f.s(Term::var(y))]),
                    p.f.s(Term::apps(p.f.add, vec![Term::var(x), Term::var(y)])),
                ),
                Equation::new(
                    Term::apps(p.f.add, vec![Term::var(x), Term::var(y)]),
                    Term::apps(p.f.add, vec![Term::var(y), Term::var(x)]),
                ),
            ]
        };
        let mut total_hits = 0;
        for (i, goal) in goals(&mut VarStore::new()).into_iter().enumerate() {
            let mut vars = VarStore::new();
            let eqs = goals(&mut vars);
            let plain = Prover::new(&p.prog).prove(eqs[i].clone(), vars.clone());
            let cached = Prover::new(&p.prog)
                .with_shared_cache(cache.clone())
                .prove(goal, vars);
            assert_eq!(plain.outcome, cached.outcome, "goal {i}");
            if cached.outcome.is_proved() {
                check(&cached.proof, &p.prog, GlobalCheck::VariableTraces).unwrap();
            }
            total_hits += cached.stats.shared_cache_hits;
        }
        assert!(
            total_hits > 0,
            "related goals over the same program must share reductions"
        );
    }

    #[test]
    fn all_nodes_policy_also_proves() {
        let p = nat_list_program();
        let mut vars = VarStore::new();
        let x = vars.fresh("x", p.f.nat_ty());
        let goal = Equation::new(
            Term::apps(p.f.add, vec![Term::var(x), Term::sym(p.f.zero)]),
            Term::var(x),
        );
        let config = SearchConfig {
            lemma_policy: LemmaPolicy::AllNodes,
            ..SearchConfig::default()
        };
        let prover = Prover::with_config(&p.prog, config);
        let res = prover.prove(goal, vars);
        assert!(res.outcome.is_proved(), "{:?}", res.outcome);
        check(&res.proof, &p.prog, GlobalCheck::VariableTraces).unwrap();
    }
}
