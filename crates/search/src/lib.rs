//! Goal-directed cyclic proof search for CycleQ (§5, §6).
//!
//! This crate implements the paper's proof-search algorithm on top of the
//! [`cycleq_proof`] calculus:
//!
//! - rules are applied in the priority order *reduce, refl, congruence,
//!   extensionality, subst, case*; the first four are committed (never
//!   backtracked), matching §6;
//! - `(Subst)` is used as the *matching function* for cycles: lemmas are
//!   existing `(Case)`-justified proof nodes (§5.1), configurable via
//!   [`LemmaPolicy`] for the ablation study;
//! - global correctness is maintained *incrementally*: every edge extends a
//!   size-change closure with undo, and a cycle that cannot satisfy
//!   Theorem 5.2 is pruned the moment it is formed (§5.2);
//! - constructor clashes refute goals outright when reached by invertible
//!   rules only, giving a disproof facility for free.
//!
//! # Example
//!
//! ```
//! use cycleq_rewrite::fixtures::nat_list_program;
//! use cycleq_search::Prover;
//! use cycleq_term::{Equation, Term, VarStore};
//!
//! let p = nat_list_program();
//! let mut vars = VarStore::new();
//! let x = vars.fresh("x", p.f.nat_ty());
//! let goal = Equation::new(
//!     Term::apps(p.f.add, vec![Term::var(x), Term::sym(p.f.zero)]),
//!     Term::var(x),
//! );
//! let result = Prover::new(&p.prog).prove(goal, vars);
//! assert!(result.outcome.is_proved());
//! ```

mod budget;
mod config;
mod induction;
mod prover;
mod retry;

pub use budget::Budget;
pub use config::{LemmaPolicy, SearchConfig, SearchStats};
pub use cycleq_rewrite::CancelToken;
pub use induction::{structural_induction, InductionError};
pub use prover::{Outcome, ProofResult, Prover, RoundObserver};
pub use retry::RetryPolicy;
