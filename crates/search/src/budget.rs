//! Resource budgets for proof search.
//!
//! A [`Budget`] bundles the three resources a prove call can run out of —
//! wall clock, proof nodes, and reduction fuel — into one value that can be
//! passed around, tightened, and (at the engine level) apportioned across
//! the goals of a batch. It complements [`SearchConfig`](crate::SearchConfig):
//! the config describes *how* to search (depths, lemma policy) plus the
//! prover's own default limits, while a budget is a per-call ceiling imposed
//! from outside. The effective limit of a run is always the tighter of the
//! two.

use std::time::Duration;

/// A per-call resource ceiling: wall-clock time, proof nodes created, and
/// reduction fuel per normalisation. `None` in a field means "no ceiling
/// from this budget" (the prover's [`SearchConfig`](crate::SearchConfig)
/// limits still apply).
///
/// ```
/// use std::time::Duration;
/// use cycleq_search::Budget;
///
/// let budget = Budget::unlimited()
///     .with_timeout(Duration::from_millis(250))
///     .with_max_nodes(10_000);
/// assert_eq!(budget.timeout, Some(Duration::from_millis(250)));
/// assert_eq!(budget.max_nodes, Some(10_000));
/// assert_eq!(budget.fuel, None);
/// ```
///
/// Budgets combine with [`Budget::min`], which keeps the tighter limit in
/// every dimension — useful when a batch-level ceiling meets a per-goal
/// slice:
///
/// ```
/// use std::time::Duration;
/// use cycleq_search::Budget;
///
/// let batch = Budget::unlimited().with_timeout(Duration::from_secs(10));
/// let slice = Budget::unlimited()
///     .with_timeout(Duration::from_secs(2))
///     .with_max_nodes(50_000);
/// let effective = batch.min(&slice);
/// assert_eq!(effective.timeout, Some(Duration::from_secs(2)));
/// assert_eq!(effective.max_nodes, Some(50_000));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Budget {
    /// Wall-clock ceiling for the whole call.
    pub timeout: Option<Duration>,
    /// Ceiling on proof nodes created (across backtracking).
    pub max_nodes: Option<usize>,
    /// Ceiling on reduction fuel per normalisation.
    pub fuel: Option<usize>,
}

impl Budget {
    /// A budget imposing no limits of its own.
    pub fn unlimited() -> Budget {
        Budget::default()
    }

    /// Sets the wall-clock ceiling.
    pub fn with_timeout(mut self, timeout: Duration) -> Budget {
        self.timeout = Some(timeout);
        self
    }

    /// Sets the proof-node ceiling.
    pub fn with_max_nodes(mut self, max_nodes: usize) -> Budget {
        self.max_nodes = Some(max_nodes);
        self
    }

    /// Sets the per-normalisation reduction-fuel ceiling.
    pub fn with_fuel(mut self, fuel: usize) -> Budget {
        self.fuel = Some(fuel);
        self
    }

    /// Whether this budget imposes no limit in any dimension.
    pub fn is_unlimited(&self) -> bool {
        self.timeout.is_none() && self.max_nodes.is_none() && self.fuel.is_none()
    }

    /// The tighter of two budgets in every dimension.
    pub fn min(&self, other: &Budget) -> Budget {
        fn tighter<T: Ord + Copy>(a: Option<T>, b: Option<T>) -> Option<T> {
            match (a, b) {
                (Some(x), Some(y)) => Some(x.min(y)),
                (x, None) => x,
                (None, y) => y,
            }
        }
        Budget {
            timeout: tighter(self.timeout, other.timeout),
            max_nodes: tighter(self.max_nodes, other.max_nodes),
            fuel: tighter(self.fuel, other.fuel),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_is_the_identity_of_min() {
        let b = Budget::unlimited()
            .with_timeout(Duration::from_secs(1))
            .with_max_nodes(5)
            .with_fuel(7);
        assert_eq!(Budget::unlimited().min(&b), b);
        assert_eq!(b.min(&Budget::unlimited()), b);
        assert!(Budget::unlimited().is_unlimited());
        assert!(!b.is_unlimited());
    }

    #[test]
    fn min_takes_the_tighter_limit_per_dimension() {
        let a = Budget::unlimited()
            .with_timeout(Duration::from_secs(1))
            .with_fuel(100);
        let b = Budget::unlimited()
            .with_timeout(Duration::from_secs(2))
            .with_max_nodes(10);
        let m = a.min(&b);
        assert_eq!(m.timeout, Some(Duration::from_secs(1)));
        assert_eq!(m.max_nodes, Some(10));
        assert_eq!(m.fuel, Some(100));
    }
}
