//! Search configuration and statistics.

use std::time::Duration;

/// Which proof nodes may serve as `(Subst)` lemmas.
///
/// §5.1 identifies redundancies that let the search consider only
/// `(Case)`-justified nodes: lemmas justified by `(Refl)` are useless, those
/// justified by `(Reduce)` are subsumed by reducing the goal first, and
/// those justified by `(Subst)` can be replaced by their own lemma because
/// contexts and substitutions compose.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum LemmaPolicy {
    /// Only nodes justified by `(Case)` (the paper's default; in the proof
    /// of commutativity this shrinks the candidate set from 16 nodes to 3).
    #[default]
    CaseOnly,
    /// Every justified node. Kept for the §5.1 ablation benchmark.
    AllNodes,
}

/// Tunable limits and policies for proof search.
///
/// The search runs *iterative deepening*: bounded DFS at
/// [`SearchConfig::initial_depth`], increasing by
/// [`SearchConfig::depth_step`] up to [`SearchConfig::max_depth`] while the
/// previous round was cut by its depth bound. Deep bounds on a single DFS
/// pass let doomed branches blow up before the right alternative is tried;
/// iterative deepening keeps the cheap shallow proofs cheap.
#[derive(Clone, Debug)]
pub struct SearchConfig {
    /// Depth bound of the first deepening round.
    pub initial_depth: usize,
    /// Increment between deepening rounds.
    pub depth_step: usize,
    /// Maximum DFS depth (rule applications along a branch).
    pub max_depth: usize,
    /// Maximum number of proof nodes created in total per prove call
    /// (across backtracking *and* iterative-deepening rounds).
    pub max_nodes: usize,
    /// Reduction fuel per normalisation.
    pub reduction_fuel: usize,
    /// Which nodes may be used as lemmas.
    pub lemma_policy: LemmaPolicy,
    /// Wall-clock budget; `None` means unbounded.
    pub timeout: Option<Duration>,
}

impl Default for SearchConfig {
    fn default() -> SearchConfig {
        SearchConfig {
            initial_depth: 6,
            depth_step: 2,
            max_depth: 24,
            max_nodes: 1_000_000,
            reduction_fuel: 10_000,
            lemma_policy: LemmaPolicy::CaseOnly,
            timeout: Some(Duration::from_secs(5)),
        }
    }
}

/// Counters describing a finished search.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Proof nodes created, including backtracked ones.
    pub nodes_created: usize,
    /// Iterative-deepening rounds run (≥ 1 for any finished search).
    pub rounds: usize,
    /// `(Reduce)` applications committed (goal rewritten to normal form).
    pub rule_reduce: u64,
    /// `(Refl)` closures (goal discharged by syntactic identity).
    pub rule_refl: u64,
    /// `(Cong)` constructor decompositions committed.
    pub rule_cong: u64,
    /// `(FunExt)` applications committed on arrow-typed goals.
    pub rule_funext: u64,
    /// `(Case)` applications attempted.
    pub case_splits: usize,
    /// `(Subst)` candidate instances tried.
    pub subst_attempts: usize,
    /// `(Subst)` instances whose cycle failed the size-change check and
    /// were pruned immediately (§5.2).
    pub unsound_cycles_pruned: usize,
    /// Times the depth bound cut a branch.
    pub depth_limit_hits: usize,
    /// Size-change graphs currently in the closure at the end of search.
    pub closure_graphs: usize,
    /// Cold size-change graph compositions performed by the closure's
    /// graph store (memo misses).
    pub closure_compositions: u64,
    /// Graph compositions served from the store's `(GraphId, GraphId)`
    /// memo table — including re-derivations after backtracking, since the
    /// store survives undo.
    pub composition_memo_hits: u64,
    /// Size-change graphs dropped by cross-pair subsumption pruning
    /// (edge-wise dominated by an already-retained graph; see
    /// `cycleq_sizechange::incremental`).
    pub graphs_subsumed: u64,
    /// Distinct hash-consed size-change graphs interned during the search.
    pub interned_graphs: usize,
    /// Normal forms served from the memoised rewriter's cache.
    pub reduce_memo_hits: u64,
    /// Normal forms served from the program-scoped *shared* cache (other
    /// workers, other goals, earlier deepening rounds). Zero when no shared
    /// cache is attached.
    pub shared_cache_hits: u64,
    /// Shared-cache lookups that found nothing.
    pub shared_cache_misses: u64,
    /// Distinct hash-consed term nodes interned during the search.
    pub interned_nodes: usize,
    /// Wall-clock time spent.
    pub elapsed: Duration,
}

impl SearchStats {
    /// Adds every counter of `other` into `self` (including the gauges
    /// `closure_graphs`/`interned_nodes` and `elapsed`). Aggregators with
    /// gauge semantics — e.g. the prover's deepening loop, which reports
    /// the *final* round's gauge values — call this and then overwrite the
    /// gauge fields; keeping the summation in one place means a counter
    /// added to this struct is aggregated everywhere automatically.
    pub fn absorb(&mut self, other: &SearchStats) {
        self.nodes_created += other.nodes_created;
        self.rounds += other.rounds;
        self.rule_reduce += other.rule_reduce;
        self.rule_refl += other.rule_refl;
        self.rule_cong += other.rule_cong;
        self.rule_funext += other.rule_funext;
        self.case_splits += other.case_splits;
        self.subst_attempts += other.subst_attempts;
        self.unsound_cycles_pruned += other.unsound_cycles_pruned;
        self.depth_limit_hits += other.depth_limit_hits;
        self.closure_graphs += other.closure_graphs;
        self.closure_compositions += other.closure_compositions;
        self.composition_memo_hits += other.composition_memo_hits;
        self.graphs_subsumed += other.graphs_subsumed;
        self.interned_graphs += other.interned_graphs;
        self.reduce_memo_hits += other.reduce_memo_hits;
        self.shared_cache_hits += other.shared_cache_hits;
        self.shared_cache_misses += other.shared_cache_misses;
        self.interned_nodes += other.interned_nodes;
        self.elapsed += other.elapsed;
    }

    /// Keys with gauge semantics: they describe end-of-search sizes rather
    /// than monotone event counts (aggregators overwrite instead of sum,
    /// and the metrics registry exposes them as gauges).
    pub const GAUGE_KEYS: &'static [&'static str] =
        &["closure_graphs", "interned_graphs", "interned_nodes"];

    /// Every counter as a `(key, value)` list, in presentation order.
    ///
    /// This is the **single source of truth** for the stats surface: the
    /// CLI `--stats` line, the NDJSON `stats` object, and the
    /// `cycleq_search_*` metric families are all generated from it, so a
    /// field added here (and to [`SearchStats::absorb`]) is surfaced
    /// everywhere at once — `crates/cli/tests/stats_schema.rs` pins the
    /// key set across all three. `elapsed` is deliberately excluded (it is
    /// a duration, reported separately).
    pub fn entries(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("nodes_created", self.nodes_created as u64),
            ("rounds", self.rounds as u64),
            ("rule_reduce", self.rule_reduce),
            ("rule_refl", self.rule_refl),
            ("rule_cong", self.rule_cong),
            ("rule_funext", self.rule_funext),
            ("case_splits", self.case_splits as u64),
            ("subst_attempts", self.subst_attempts as u64),
            ("unsound_cycles_pruned", self.unsound_cycles_pruned as u64),
            ("depth_limit_hits", self.depth_limit_hits as u64),
            ("closure_graphs", self.closure_graphs as u64),
            ("closure_compositions", self.closure_compositions),
            ("composition_memo_hits", self.composition_memo_hits),
            ("graphs_subsumed", self.graphs_subsumed),
            ("interned_graphs", self.interned_graphs as u64),
            ("reduce_memo_hits", self.reduce_memo_hits),
            ("shared_cache_hits", self.shared_cache_hits),
            ("shared_cache_misses", self.shared_cache_misses),
            ("interned_nodes", self.interned_nodes as u64),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_case_only() {
        let c = SearchConfig::default();
        assert_eq!(c.lemma_policy, LemmaPolicy::CaseOnly);
        assert!(c.max_depth > 0);
        assert!(c.timeout.is_some());
    }
}
