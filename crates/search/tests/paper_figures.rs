//! End-to-end search tests reproducing the proofs shown as figures in the
//! paper, parsed through the frontend.

use cycleq_lang::parse_module;
use cycleq_proof::{check, GlobalCheck};
use cycleq_search::{Outcome, Prover, SearchConfig};

fn prove(src: &str, goal: &str) -> (cycleq_search::ProofResult, cycleq_lang::Module) {
    let module = parse_module(src).expect("valid program");
    assert!(module.validate().is_empty(), "{:?}", module.validate());
    let g = module.goal(goal).expect("goal exists").clone();
    let prover = Prover::new(&module.program);
    let res = prover.prove(g.eq, g.vars);
    (res, module)
}

/// Figure 9 / Example C.1: `map id xs ≈ xs`.
#[test]
fn fig9_map_id() {
    let src = "
data List a = Nil | Cons a (List a)
id :: a -> a
id x = x
map :: (a -> b) -> List a -> List b
map f Nil = Nil
map f (Cons x xs) = Cons (f x) (map f xs)
goal mapId: map id xs === xs
";
    let (res, module) = prove(src, "mapId");
    assert!(res.outcome.is_proved(), "{:?}", res.outcome);
    let report = check(&res.proof, &module.program, GlobalCheck::VariableTraces).unwrap();
    assert!(report.back_edges >= 1, "the proof is cyclic");
}

/// Figure 1: the mutual-induction example from the introduction —
/// `mapE id e ≈ e` over mutually recursive annotated syntax trees.
#[test]
fn fig1_mutual_induction_map_identity() {
    let src = "
data Nat = Z | S Nat
data Term a = Var a | Cst Nat | App (Expr a) (Expr a)
data Expr a = MkE (Term a) Nat
id :: a -> a
id x = x
mapT :: (a -> b) -> Term a -> Term b
mapT f (Var v) = Var (f v)
mapT f (Cst c) = Cst c
mapT f (App e1 e2) = App (mapE f e1) (mapE f e2)
mapE :: (a -> b) -> Expr a -> Expr b
mapE f (MkE t n) = MkE (mapT f t) n
goal mapEId: mapE id e === e
goal mapTId: mapT id t === t
";
    let (res, module) = prove(src, "mapEId");
    assert!(res.outcome.is_proved(), "{:?}", res.outcome);
    let report = check(&res.proof, &module.program, GlobalCheck::VariableTraces).unwrap();
    assert!(report.back_edges >= 1);

    // The Term-side law holds too.
    let g = module.goal("mapTId").unwrap().clone();
    let res = Prover::new(&module.program).prove(g.eq, g.vars);
    assert!(res.outcome.is_proved(), "{:?}", res.outcome);
}

/// Figure 2 / IsaPlanner prop 50:
/// `butLast xs ≈ take (len xs − S Z) xs`.
#[test]
fn fig2_butlast_take() {
    let src = "
data Nat = Z | S Nat
data List a = Nil | Cons a (List a)
sub :: Nat -> Nat -> Nat
sub Z y = Z
sub x Z = x
sub (S x) (S y) = sub x y
butLast :: List a -> List a
butLast Nil = Nil
butLast (Cons x Nil) = Nil
butLast (Cons x (Cons y ys)) = Cons x (butLast (Cons y ys))
len :: List a -> Nat
len Nil = Z
len (Cons x xs) = S (len xs)
take :: Nat -> List a -> List a
take Z xs = Nil
take (S n) Nil = Nil
take (S n) (Cons x xs) = Cons x (take n xs)
goal prop50: butLast xs === take (sub (len xs) (S Z)) xs
";
    // `sub x Z = x` overlaps `sub Z y = Z` at (Z, Z): a weak overlap where
    // both clauses agree, so the prover is still sound on it — but the
    // program is not orthogonal, and `fig2_sub_overlap_is_flagged` below
    // pins that the analyzer reports it.
    let module = parse_module(src).expect("valid program");
    let g = module.goal("prop50").expect("goal exists").clone();
    let res = Prover::new(&module.program).prove(g.eq, g.vars);
    assert!(res.outcome.is_proved(), "{:?}", res.outcome);
    check(&res.proof, &module.program, GlobalCheck::VariableTraces).unwrap();
}

/// Regression for the note on `fig2_butlast_take`: the paper's `sub` has a
/// weak overlap at `sub Z Z` (clauses 1 and 2 both match and agree), which
/// the static analyzer must flag as `CQ002` — downgraded to a warning,
/// since the critical pair is joinable (both reducts normalize to `Z`) —
/// and must not flag on the orthogonal reformulation that splits the
/// second clause on `S x`.
#[test]
fn fig2_sub_overlap_is_flagged() {
    let overlapping = "
data Nat = Z | S Nat
sub :: Nat -> Nat -> Nat
sub Z y = Z
sub x Z = x
sub (S x) (S y) = sub x y
goal triv: sub x x === Z
";
    let module = parse_module(overlapping).expect("valid program");
    let diags = cycleq_analysis::analyze(&module);
    let overlaps: Vec<_> = diags
        .iter()
        .filter(|d| d.code == cycleq_analysis::Code::Overlap)
        .collect();
    assert_eq!(overlaps.len(), 1, "{diags:?}");
    assert!(
        !overlaps[0].is_error(),
        "the joinable overlap is a warning: {:?}",
        overlaps[0]
    );
    assert!(
        overlaps[0].message.contains("lines 4 and 5"),
        "{}",
        overlaps[0].message
    );
    assert!(
        overlaps[0].notes.iter().any(|n| n.contains("sub Z Z")),
        "{:?}",
        overlaps[0].notes
    );

    // The orthogonal variant computes the same function and is clean.
    let orthogonal = "
data Nat = Z | S Nat
sub :: Nat -> Nat -> Nat
sub Z y = Z
sub (S x) Z = S x
sub (S x) (S y) = sub x y
goal triv: sub x x === Z
";
    let module = parse_module(orthogonal).expect("valid program");
    let diags = cycleq_analysis::analyze(&module);
    assert!(diags.is_empty(), "{diags:?}");
}

/// Figure 4: commutativity of addition through the frontend.
#[test]
fn fig4_commutativity() {
    let src = "
data Nat = Z | S Nat
add :: Nat -> Nat -> Nat
add Z y = y
add (S x) y = S (add x y)
goal comm: add x y === add y x
";
    let (res, module) = prove(src, "comm");
    assert!(res.outcome.is_proved(), "{:?}", res.outcome);
    let report = check(&res.proof, &module.program, GlobalCheck::VariableTraces).unwrap();
    assert!(report.back_edges >= 2);
}

/// A conditional-flavoured problem CycleQ cannot solve (§6.2, problem 4):
/// the search must terminate with Exhausted rather than diverge.
#[test]
fn out_of_scope_conditional_reasoning_terminates() {
    let src = "
data Nat = Z | S Nat
data Bool = True | False
data List a = Nil | Cons a (List a)
ite :: Bool -> a -> a -> a
ite True x y = x
ite False x y = y
natEq :: Nat -> Nat -> Bool
natEq Z Z = True
natEq Z (S y) = False
natEq (S x) Z = False
natEq (S x) (S y) = natEq x y
count :: Nat -> List Nat -> Nat
count n Nil = Z
count n (Cons x xs) = ite (natEq n x) (S (count n xs)) (count n xs)
goal prop04: S (count n xs) === count n (Cons n xs)
";
    let module = parse_module(src).expect("valid program");
    let g = module.goal("prop04").unwrap().clone();
    let config = SearchConfig {
        timeout: Some(std::time::Duration::from_secs(2)),
        ..SearchConfig::default()
    };
    let res = Prover::with_config(&module.program, config).prove(g.eq, g.vars);
    assert!(
        matches!(
            res.outcome,
            Outcome::Exhausted | Outcome::Timeout | Outcome::NodeBudget
        ),
        "{:?}",
        res.outcome
    );
}

/// The printed proof of Fig. 4 mentions its cycle labels.
#[test]
fn fig4_proof_renders() {
    let src = "
data Nat = Z | S Nat
add :: Nat -> Nat -> Nat
add Z y = y
add (S x) y = S (add x y)
goal comm: add x y === add y x
";
    let (res, module) = prove(src, "comm");
    let Outcome::Proved { root } = res.outcome else {
        panic!("not proved")
    };
    let text = cycleq_proof::render_text(&res.proof, &module.program.sig, root);
    assert!(text.contains("[Case"));
    assert!(text.contains("≈"));
}
