//! Property-based tests for the prover itself: on *ground* equations the
//! prover is a decision procedure — it must prove exactly the equations
//! whose sides share a normal form and refute the rest — and everything it
//! proves must survive the independent checker.

use cycleq_proof::{check, GlobalCheck};
use cycleq_rewrite::fixtures::nat_list_program;
use cycleq_rewrite::Rewriter;
use cycleq_search::{Outcome, Prover, SearchConfig};
use cycleq_term::{Equation, Term, VarStore};
use proptest::prelude::*;
use proptest::test_runner::Config;

fn cfg() -> Config {
    Config {
        cases: 64,
        ..Config::default()
    }
}

fn ground_nat(p: &cycleq_rewrite::fixtures::ProgramFixture) -> impl Strategy<Value = Term> {
    let zero = p.f.zero;
    let succ = p.f.succ;
    let add = p.f.add;
    let leaf = Just(Term::sym(zero));
    leaf.prop_recursive(3, 16, 2, move |inner| {
        prop_oneof![
            inner.clone().prop_map(move |t| Term::apps(succ, vec![t])),
            (inner.clone(), inner).prop_map(move |(a, b)| Term::apps(add, vec![a, b])),
        ]
    })
}

#[test]
fn prover_decides_ground_nat_equations() {
    let p = nat_list_program();
    let rw = Rewriter::new(&p.prog.sig, &p.prog.trs);
    proptest!(cfg(), |(a in ground_nat(&p), b in ground_nat(&p))| {
        let truth = rw.normalize(&a).term == rw.normalize(&b).term;
        let prover = Prover::new(&p.prog);
        let res = prover.prove(Equation::new(a.clone(), b.clone()), VarStore::new());
        if truth {
            prop_assert!(res.outcome.is_proved(), "valid ground equation not proved: {:?}", res.outcome);
            check(&res.proof, &p.prog, GlobalCheck::VariableTraces).expect("checker accepts");
        } else {
            prop_assert_eq!(res.outcome.clone(), Outcome::Refuted, "{:?}", res.outcome);
        }
    });
}

#[test]
fn proofs_survive_the_checker_on_random_one_variable_goals() {
    // add x (S^k Z) ≈ S^k x is valid for every k; the prover should find
    // each proof and the checker accept it.
    let p = nat_list_program();
    proptest!(Config { cases: 8, ..Config::default() }, |(k in 0usize..4)| {
        let mut vars = VarStore::new();
        let x = vars.fresh("x", p.f.nat_ty());
        let mut rhs = Term::var(x);
        for _ in 0..k {
            rhs = p.f.s(rhs);
        }
        let goal = Equation::new(
            Term::apps(p.f.add, vec![Term::var(x), p.f.num(k)]),
            rhs,
        );
        let res = Prover::new(&p.prog).prove(goal, vars);
        prop_assert!(res.outcome.is_proved(), "k={k}: {:?}", res.outcome);
        check(&res.proof, &p.prog, GlobalCheck::VariableTraces).expect("checker accepts");
    });
}

#[test]
fn node_budget_is_respected() {
    let p = nat_list_program();
    let mut vars = VarStore::new();
    let x = vars.fresh("x", p.f.nat_ty());
    let y = vars.fresh("y", p.f.nat_ty());
    // An unprovable-without-lemmas goal, with a tiny node budget.
    let goal = Equation::new(
        Term::apps(p.f.add, vec![Term::var(x), Term::var(y)]),
        Term::apps(p.f.add, vec![p.f.s(Term::var(y)), Term::var(x)]),
    );
    let config = SearchConfig {
        max_nodes: 50,
        timeout: None,
        ..SearchConfig::default()
    };
    let res = Prover::with_config(&p.prog, config).prove(goal, vars);
    assert!(
        matches!(
            res.outcome,
            Outcome::NodeBudget | Outcome::Refuted | Outcome::Exhausted
        ),
        "{:?}",
        res.outcome
    );
    if matches!(res.outcome, Outcome::NodeBudget) {
        assert!(
            res.stats.nodes_created <= 50 + 8,
            "budget roughly respected"
        );
    }
}

#[test]
fn deterministic_across_runs() {
    let p = nat_list_program();
    let run = || {
        let mut vars = VarStore::new();
        let x = vars.fresh("x", p.f.nat_ty());
        let y = vars.fresh("y", p.f.nat_ty());
        let goal = Equation::new(
            Term::apps(p.f.add, vec![Term::var(x), Term::var(y)]),
            Term::apps(p.f.add, vec![Term::var(y), Term::var(x)]),
        );
        let res = Prover::new(&p.prog).prove(goal, vars);
        (
            format!("{:?}", res.outcome),
            res.proof.len(),
            res.stats.nodes_created,
        )
    };
    assert_eq!(run(), run(), "search must be deterministic");
}
