//! Umbrella crate for the CycleQ reproduction.
//!
//! This crate exists to host the repository-level `examples/` and `tests/`
//! directories; the actual functionality lives in the `cycleq-*` workspace
//! crates. Downstream users should depend on the [`cycleq`] facade crate.

pub use cycleq;
