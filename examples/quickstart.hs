-- Quickstart program for the `cycleq` CLI:
--   cargo run --release -p cycleq-cli -- examples/quickstart.hs
-- Peano naturals with addition, and three equational goals the prover
-- settles by cyclic induction (no induction schemes supplied).

data Nat = Z | S Nat

add :: Nat -> Nat -> Nat
add Z y = y
add (S x) y = S (add x y)

goal addZeroRight: add x Z === x
goal addSuccRight: add x (S y) === S (add x y)
goal addComm: add x y === add y x
