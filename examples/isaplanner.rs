//! Run a slice of the IsaPlanner benchmark suite (§6.1) and print the
//! outcome table, including the lemma-hint behaviour of §6.2.
//!
//! Run with `cargo run --release --example isaplanner`.
//! (The full suite lives in `cargo run --release -p cycleq-bench --bin suite`.)

use cycleq_benchsuite::{run_problem, text_table, RunConfig, ISAPLANNER};

fn main() {
    // A representative slice: easy proofs, the Fig. 2 goal (IP50), an
    // out-of-scope conditional (IP05), a conditional-reasoning casualty
    // (IP04), and a lemma-requiring problem (IP54).
    let picks = [
        "IP01", "IP04", "IP05", "IP10", "IP19", "IP22", "IP50", "IP54", "IP79",
    ];
    let problems: Vec<_> = ISAPLANNER
        .iter()
        .filter(|p| picks.contains(&p.id))
        .collect();

    println!("-- without hints --");
    let plain = RunConfig::default();
    let outcomes: Vec<_> = problems.iter().map(|p| run_problem(p, &plain)).collect();
    print!("{}", text_table(&outcomes));

    println!("\n-- with registered hint lemmas (§6.2) --");
    let hinted = RunConfig {
        with_hints: true,
        ..RunConfig::default()
    };
    let outcomes: Vec<_> = problems.iter().map(|p| run_problem(p, &hinted)).collect();
    print!("{}", text_table(&outcomes));

    println!(
        "\nIP54 (`sub (add m n) n ≈ m`) flips from unproved to proved once the\n\
         commutativity of add is supplied — and the hint itself is proved by\n\
         the same engine, so the final proof is checkable end to end."
    );
}
