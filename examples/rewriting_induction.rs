//! Rewriting induction (§4) side by side with cyclic search.
//!
//! Reddy's rewriting induction is subsumed by the cyclic system
//! (Theorem 4.3): this example runs the RI prover, translates its
//! derivation into a cyclic preproof, re-checks it with the independent
//! checker — and then shows the §4 limitation: commutativity cannot be
//! oriented by a reduction order, while the cyclic search proves it
//! directly.
//!
//! Run with `cargo run --example rewriting_induction`.

use cycleq::{GlobalCheck, Session};
use cycleq_ri::{RiOutcome, RiProver};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = "
data Nat = Z | S Nat
add :: Nat -> Nat -> Nat
add Z y = y
add (S x) y = S (add x y)
goal zeroRight: add x Z === x
goal assoc: add (add x y) z === add x (add y z)
goal comm: add x y === add y x
";
    let session = Session::from_source(source)?;
    let module = session.module();
    let ri = RiProver::new(&module.program).expect("program rules are LPO-orientable");

    for goal in ["zeroRight", "assoc", "comm"] {
        let g = module.goal(goal).expect("declared goal").clone();
        let result = ri.prove(g.eq, g.vars);
        match &result.outcome {
            RiOutcome::Proved { root } => {
                // The Theorem 4.3 translation produced a cyclic preproof:
                // locally checkable; its progress points follow the
                // reduction order (TrustConstruction mode).
                let report = cycleq::check(
                    &result.proof,
                    &module.program,
                    GlobalCheck::TrustConstruction,
                )?;
                println!(
                    "== RI proves {goal}: {} expansions, {} IH steps, {} nodes, {} back edges ==",
                    result.stats.expansions,
                    result.stats.hyp_steps,
                    result.stats.nodes,
                    report.back_edges
                );
                println!(
                    "{}",
                    cycleq::render_text(&result.proof, &module.program.sig, *root)
                );
            }
            RiOutcome::FailedToOrient { goal: eq } => {
                println!(
                    "== RI cannot orient {goal}: {} — the §4 limitation ==",
                    eq.display(&module.program.sig, result.proof.vars())
                );
                // The cyclic prover is ambivalent to orientation (§1.2):
                let verdict = session.prove(goal)?;
                println!(
                    "   CycleQ proves it directly: {:?} in {:?}\n",
                    verdict.result.outcome, verdict.result.stats.elapsed
                );
            }
            other => println!("== RI on {goal}: {other:?} =="),
        }
    }
    Ok(())
}
