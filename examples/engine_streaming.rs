//! The Engine API end to end: a builder-first engine with a streaming
//! event sink, a batch budget apportioned across goals, and a cancellation
//! token (unused here, but shown wired in).
//!
//! Run with `cargo run --example engine_streaming`.

use std::time::Duration;

use cycleq::{Budget, CancelToken, Engine, ProveEvent};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = "
data Nat = Z | S Nat

add :: Nat -> Nat -> Nat
add Z y = y
add (S x) y = S (add x y)

mul :: Nat -> Nat -> Nat
mul Z y = Z
mul (S x) y = add y (mul x y)

goal zeroRight: add x Z === x
goal succRight: add x (S y) === S (add x y)
goal comm: add x y === add y x
goal assoc: add (add x y) z === add x (add y z)
goal mulZeroRight: mul x Z === Z
";

    // The engine is configured once and can load many programs; sessions
    // are cheap per-program handles sharing its settings. The sink is
    // called from the batch's worker threads, in completion order.
    let engine = Engine::builder()
        .jobs(2)
        .on_event(|ev: &ProveEvent| match ev {
            ProveEvent::GoalStarted { index, goal } => {
                eprintln!("  → [{index}] {goal} started");
            }
            ProveEvent::RoundDeepened { goal, depth, .. } => {
                eprintln!("    … {goal} deepened to depth {depth}");
            }
            ProveEvent::GoalFinished {
                index,
                goal,
                status,
                time,
            } => {
                eprintln!(
                    "  ← [{index}] {goal}: {status} ({:.1}ms)",
                    time.as_secs_f64() * 1000.0
                );
            }
            ProveEvent::BatchFinished {
                proved,
                total,
                elapsed,
            } => {
                eprintln!("  batch done: {proved}/{total} in {elapsed:?}");
            }
        })
        .build();
    let session = engine.load(source)?;

    // A wall-clock budget for the whole batch: the engine apportions it
    // into per-goal slices, so no single goal can starve the others. The
    // token could be cancelled from another thread to abort mid-flight.
    let budget = Budget::unlimited().with_timeout(Duration::from_secs(30));
    let cancel = CancelToken::new();
    println!("proving all goals (streaming events to stderr)…");
    let report = session.prove_all_with(&budget, &cancel);

    // The report is declaration-ordered, whatever order the events
    // streamed in.
    for goal in &report.goals {
        let status = if goal.is_proved() {
            "proved"
        } else {
            "NOT proved"
        };
        println!(
            "{:>14}: {status} in {:.1}ms",
            goal.goal,
            goal.time.as_secs_f64() * 1000.0
        );
    }
    println!(
        "{} of {} goals proved | jobs={} | cache: {} hits, {} entries",
        report.proved(),
        report.goals.len(),
        report.jobs,
        report.cache.hits,
        report.cache.entries,
    );
    assert!(report.all_proved());

    // A second run seeded with the first run's measured times starts the
    // slowest goals first (cost-ordered scheduling).
    let warmed = session.clone().with_cost_hints(&report);
    let second = warmed.prove_all();
    assert!(second.all_proved());
    println!("warm re-run: {:?}", second.stats.elapsed);
    Ok(())
}
