//! The paper's headline example (Fig. 4): the commutativity of addition,
//! proved automatically with no lemmas or hints — the goal Cyclist cannot
//! prove without being given `x + S y = S (x + y)` (§1.1).
//!
//! Also demonstrates the size-change certificates that witness the global
//! correctness condition (§5.2) and the DOT rendering.
//!
//! Run with `cargo run --example commutativity`.

use cycleq::{Outcome, Session};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let session = Session::from_source(
        "
data Nat = Z | S Nat
add :: Nat -> Nat -> Nat
add Z y = y
add (S x) y = S (add x y)
goal comm: add x y === add y x
",
    )?;

    let verdict = session.prove("comm")?;
    println!("outcome: {:?}\n", verdict.result.outcome);
    println!("{}", verdict.render_proof()?);

    // Every cycle in the proof carries an idempotent size-change graph with
    // a strictly decreasing self-edge (Theorem 5.2). Print the witnesses.
    let Outcome::Proved { .. } = verdict.result.outcome else {
        unreachable!("commutativity must be proved");
    };
    let witnesses = cycleq::cycle_witnesses(&verdict.result.proof);
    println!("cycle certificates (node: idempotent graph with strict self-edge):");
    for (node, graph) in &witnesses {
        let edges: Vec<String> = graph
            .edges()
            .map(|(a, b, l)| {
                format!(
                    "{} {} {}",
                    verdict.result.proof.vars().name(a),
                    l,
                    verdict.result.proof.vars().name(b)
                )
            })
            .collect();
        println!("  node {}: {{{}}}", node.index(), edges.join(", "));
    }
    assert!(!witnesses.is_empty());

    println!(
        "\nGraphviz (render with `dot -Tpdf`):\n{}",
        verdict.render_dot()?
    );
    Ok(())
}
