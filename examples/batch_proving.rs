//! Batch proving: prove every goal of a program in parallel, sharing
//! normal forms across goals through the session's program-scoped cache.
//!
//! Run with `cargo run --example batch_proving`.

use cycleq::Engine;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = "
data Nat = Z | S Nat

add :: Nat -> Nat -> Nat
add Z y = y
add (S x) y = S (add x y)

mul :: Nat -> Nat -> Nat
mul Z y = Z
mul (S x) y = add y (mul x y)

goal zeroRight: add x Z === x
goal succRight: add x (S y) === S (add x y)
goal comm: add x y === add y x
goal assoc: add (add x y) z === add x (add y z)
goal mulZeroRight: mul x Z === Z
";
    // `jobs(0)` means one worker per hardware thread; any fixed count
    // works too. Each worker owns its term store — the only shared state is
    // the normal-form cache, so verdicts are identical to a sequential run.
    let session = Engine::builder().jobs(0).build().load(source)?;
    let report = session.prove_all();

    // Reports come back in declaration order, whatever order workers
    // finished in.
    for goal in &report.goals {
        let status = if goal.is_proved() {
            "proved"
        } else if goal.is_refuted() {
            "REFUTED"
        } else {
            "gave up"
        };
        println!("{:<14} {:<8} {:>10.2?}", goal.goal, status, goal.time);
    }
    println!(
        "\n{}/{} proved on {} workers in {:?}",
        report.proved(),
        report.goals.len(),
        report.jobs,
        report.stats.elapsed,
    );
    // Overlapping goals (comm reuses succRight-shaped reductions, assoc
    // reuses both) score hits in the shared cache.
    println!(
        "shared normal-form cache: {} hits, {} misses, {} entries",
        report.cache.hits, report.cache.misses, report.cache.entries,
    );
    assert!(report.all_proved());
    Ok(())
}
