//! Quickstart: load a small program, prove a goal, print the cyclic proof.
//!
//! Run with `cargo run --example quickstart`.

use cycleq::Session;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = "
data Nat = Z | S Nat
data List a = Nil | Cons a (List a)

add :: Nat -> Nat -> Nat
add Z y = y
add (S x) y = S (add x y)

len :: List a -> Nat
len Nil = Z
len (Cons x xs) = S (len xs)

app :: List a -> List a -> List a
app Nil ys = ys
app (Cons x xs) ys = Cons x (app xs ys)

goal lenApp: len (app xs ys) === add (len xs) (len ys)
goal addZero: add x Z === x
goal bogus: len (app xs ys) === len xs
";
    let session = Session::from_source(source)?;

    // The program satisfies the paper's standing assumptions (Remark 2.1):
    // complete pattern matching and orthogonal (hence confluent) rules.
    assert!(session.validate().is_empty());

    for goal in ["lenApp", "addZero", "bogus"] {
        let verdict = session.prove(goal)?;
        println!("== {goal}: {:?} ==", verdict.result.outcome);
        if verdict.is_proved() {
            println!("{}", verdict.render_proof()?);
            println!(
                "search created {} nodes, {} case splits, {} subst attempts, {} unsound cycles pruned, in {:?}\n",
                verdict.result.stats.nodes_created,
                verdict.result.stats.case_splits,
                verdict.result.stats.subst_attempts,
                verdict.result.stats.unsound_cycles_pruned,
                verdict.result.stats.elapsed,
            );
        } else if verdict.is_refuted() {
            println!(
                "refuted: case analysis and reduction reached a constructor clash,\n\
                 so some ground instance is false (take ys non-empty)\n"
            );
        } else {
            println!(
                "no proof found within bounds: {:?}\n",
                verdict.result.outcome
            );
        }
    }
    Ok(())
}
