//! The introduction's motivating example (Fig. 1): functor laws for
//! *mutually* recursive annotated syntax trees.
//!
//! Tools built on fixed structural induction schemes need a heuristic
//! strengthening (conjoining `mapT id t ≈ t` to the goal); in the cyclic
//! system both cycles "fall out naturally from equational reasoning" (§1.1).
//!
//! Run with `cargo run --example mutual_induction`.

use cycleq::Session;
use cycleq_benchsuite::MUTUAL_PRELUDE;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = format!(
        "{MUTUAL_PRELUDE}
goal mapEId: mapE id e === e
goal mapTId: mapT id t === t
goal sizeMap: sizeE (mapE f e) === sizeE e
goal swapInvolution: swapE (swapE e) === e
"
    );
    let session = Session::from_source(&source)?;
    for goal in ["mapEId", "mapTId", "sizeMap", "swapInvolution"] {
        let verdict = session.prove(goal)?;
        println!(
            "== {goal}: {:?} ({:?}) ==",
            verdict.result.outcome, verdict.result.stats.elapsed
        );
        println!("{}", verdict.render_proof()?);
    }
    println!(
        "No mutual-induction scheme was declared anywhere: the cycles between\n\
         the Expr and Term goals are found by the (Subst) matching rule and\n\
         certified by size-change graphs."
    );
    Ok(())
}
