//! Minimal offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset of the API this workspace's benches use:
//! `Criterion`, benchmark groups, `Bencher::iter`, `BenchmarkId` and the
//! `criterion_group!`/`criterion_main!` macros. Measurement is a plain
//! wall-clock mean over a small time budget printed as one line per
//! benchmark — no statistics, no reports. It exists so `cargo bench`
//! compiles and runs the bench targets end to end; swap the root
//! manifest's `criterion` entry back to the registry crate for real
//! measurements.

// `BenchmarkGroup` holds `&mut Criterion`; the real crate doesn't expose
// `Debug` on these types either.
#![allow(missing_debug_implementations)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group, e.g. `cycleq/appAssoc`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    pub fn new(function: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }

    fn render(&self) -> String {
        format!("{}/{}", self.function, self.parameter)
    }
}

/// Passed to the measurement closure; `iter` times the routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up, then time `sample_size` batches of one call each,
        // stopping early once the total budget is spent.
        const BUDGET: Duration = Duration::from_millis(500);
        black_box(routine());
        let started = Instant::now();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
            if started.elapsed() > BUDGET {
                break;
            }
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let best = self.samples.iter().min().expect("non-empty");
        println!(
            "{name:<40} time: [mean {mean:>12?}  best {best:>12?}  samples {}]",
            self.samples.len()
        );
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    b.report(name);
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Lower bound on samples per benchmark (shim: used as the batch count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id);
        run_bench(&name, self.sample_size, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.render());
        run_bench(&name, self.sample_size, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// The harness entry point handed to each benchmark function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.sample_size, f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            name: name.to_string(),
            sample_size,
            _criterion: self,
        }
    }
}

/// Bundles benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running every group; ignores harness CLI arguments
/// (`--bench`, filters) that `cargo bench` forwards.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
