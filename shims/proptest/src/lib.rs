//! Minimal offline stand-in for the `proptest` crate.
//!
//! Implements exactly the surface this workspace uses: composable
//! generation strategies and the `proptest!` test-loop macro. Cases are
//! generated from a fixed seed (deterministic across runs); failing inputs
//! are not shrunk — assertions panic with the generated values instead.

// Strategy combinators hold closures and `Rc<dyn Strategy>`, which cannot
// derive `Debug`; the real crate doesn't expose `Debug` on them either.
#![allow(missing_debug_implementations)]

pub mod test_runner {
    /// Per-test configuration; only `cases` is interpreted.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases to run.
        pub cases: u32,
        /// Accepted for upstream compatibility; this shim never shrinks.
        pub max_shrink_iters: u32,
    }

    impl Default for Config {
        fn default() -> Config {
            Config {
                cases: 256,
                max_shrink_iters: 0,
            }
        }
    }

    /// SplitMix64: tiny, fast, and good enough for test-case generation.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> TestRng {
            TestRng { state: seed }
        }

        /// Deterministic default seed so test runs are reproducible.
        pub fn deterministic() -> TestRng {
            TestRng::from_seed(0x5EED_CAFE_F00D_D00D)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A composable generator of values of type `Self::Value`.
    ///
    /// Unlike upstream proptest there is no value tree or shrinking: a
    /// strategy is just a samplable distribution.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Builds a recursive strategy: `self` is the leaf case and `f`
        /// wraps a strategy for depth `d` into one for depth `d + 1`.
        /// Sampling picks a depth in `0..=depth` uniformly, so both bare
        /// leaves and full-depth values occur. `max_size` and
        /// `items_per_collection` are accepted for API compatibility but
        /// ignored (sizes are bounded by `depth` alone).
        fn prop_recursive<F, S>(
            self,
            depth: u32,
            _max_size: u32,
            _items_per_collection: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
            S: Strategy<Value = Self::Value> + 'static,
        {
            let mut levels: Vec<BoxedStrategy<Self::Value>> = vec![self.boxed()];
            for _ in 0..depth {
                let prev = levels.last().expect("at least the leaf level").clone();
                levels.push(f(prev).boxed());
            }
            Union::new(levels).boxed()
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// A cheaply clonable, type-erased strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> BoxedStrategy<T> {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            self.0.sample(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `Strategy::prop_map` adapter.
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform choice between alternative strategies (`prop_oneof!`).
    pub struct Union<T>(Vec<BoxedStrategy<T>>);

    impl<T> Union<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union(options)
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.0.len() as u64) as usize;
            self.0[i].sample(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    // Widen to i128 so spans that overflow the narrow type
                    // (e.g. -100i8..100) are still computed correctly.
                    let span = (self.end as i128 - self.start as i128) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    if span == 0 {
                        // Full-width range (e.g. 0..=u64::MAX): the span
                        // wraps to zero; every raw value is in range.
                        return lo.wrapping_add(rng.next_u64() as $t);
                    }
                    lo.wrapping_add(rng.below(span) as $t)
                }
            }
        )+};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($s:ident $idx:tt),+);)+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy! {
        (A 0);
        (A 0, B 1);
        (A 0, B 1, C 2);
        (A 0, B 1, C 2, D 3);
        (A 0, B 1, C 2, D 3, E 4);
        (A 0, B 1, C 2, D 3, E 4, F 5);
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Length specification for [`vec`]: an exact size or a range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            // Match upstream's default: `Some` three times out of four.
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.sample(rng))
            }
        }
    }

    /// Generates `None` or `Some` of the inner strategy's values.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Runs the body for `config.cases` deterministic pseudo-random cases.
///
/// Only the `proptest!(config, |(var in strategy, ...)| { body })` form is
/// supported — the form every call site in this workspace uses. Each
/// strategy expression is evaluated once, bound to the case variable's
/// name, then shadowed by a freshly sampled value on every iteration.
#[macro_export]
macro_rules! proptest {
    ($config:expr, |($($var:ident in $strat:expr),+ $(,)?)| $body:block) => {{
        let config: $crate::test_runner::Config = $config;
        let mut rng = $crate::test_runner::TestRng::deterministic();
        $(let $var = $strat;)+
        for _case in 0..config.cases {
            $(let $var = $crate::strategy::Strategy::sample(&$var, &mut rng);)+
            $body
        }
    }};
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Skips the current case when the assumption does not hold.
///
/// Expands to `continue`, so it must appear directly inside the
/// `proptest!` body (not in a nested loop) — true of every use here.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Uniform choice among the given strategies (all must share a value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
