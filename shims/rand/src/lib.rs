//! Minimal offline stand-in for the `rand` crate.
//!
//! Provides `rngs::StdRng`, `SeedableRng::seed_from_u64` and the two `Rng`
//! methods the workspace uses (`gen_range` over integer ranges and
//! `gen_bool`). The generator is SplitMix64 — deterministic and uniform
//! enough for benchmark workload construction, but its value stream does
//! not match the upstream `StdRng`.

use std::ops::Range;

/// Constructs a generator from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Integer types `Rng::gen_range` can sample uniformly.
pub trait UniformInt: Copy {
    fn from_below(raw: u64, range: Range<Self>) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),+) => {$(
        impl UniformInt for $t {
            fn from_below(raw: u64, range: Range<$t>) -> $t {
                assert!(range.start < range.end, "cannot sample empty range");
                // Widen to i128 so spans that overflow the narrow type
                // (e.g. -100i8..100) are still computed correctly.
                let span = (range.end as i128 - range.start as i128) as u64;
                range.start.wrapping_add((raw % span) as $t)
            }
        }
    )+};
}

uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Random value generation over a raw `u64` source.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from a half-open integer range.
    fn gen_range<T: UniformInt>(&mut self, range: Range<T>) -> T {
        T::from_below(self.next_u64(), range)
    }

    /// `true` with probability `p` (which must lie in `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// SplitMix64 generator (shim for the upstream ChaCha-based `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}
